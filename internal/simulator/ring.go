package simulator

// ring is a growable FIFO deque backed by a circular buffer. Unlike the
// append/re-slice idiom it never slides its backing array, so steady-state
// push/pop traffic on task queues and link queues is allocation-free once
// the buffer has reached its high-water mark.
type ring[T any] struct {
	buf  []T
	head int
	n    int
}

func (r *ring[T]) len() int { return r.n }

func (r *ring[T]) push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	// Compare-and-wrap instead of modulo: this runs per tuple hop, and an
	// integer divide is the most expensive thing left in the path.
	i := r.head + r.n
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	r.buf[i] = v
	r.n++
}

func (r *ring[T]) pop() T {
	var zero T
	v := r.buf[r.head]
	r.buf[r.head] = zero // release references for pooling/GC
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	return v
}

// grow doubles capacity, relinearizing FIFO order from head.
func (r *ring[T]) grow() {
	capacity := len(r.buf) * 2
	if capacity == 0 {
		capacity = 8
	}
	buf := make([]T, capacity)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = buf
	r.head = 0
}
