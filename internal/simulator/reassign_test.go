package simulator

import (
	"testing"
	"time"

	"rstorm/internal/cluster"
	"rstorm/internal/core"
	"rstorm/internal/topology"
)

// collector is a test Observer that copies every window's samples.
type collector struct {
	windows [][]TaskSample
}

func (c *collector) OnWindow(samples []TaskSample) {
	c.windows = append(c.windows, append([]TaskSample(nil), samples...))
}

// spoutEmittedIn sums spout emissions in window w.
func (c *collector) spoutEmittedIn(w int) int64 {
	var n int64
	for _, s := range c.windows[w] {
		if s.Spout {
			n += s.Emitted
		}
	}
	return n
}

// twoNodeChain builds spout -> sink placed on separate nodes.
func twoNodeChain(t *testing.T, boltCost time.Duration, maxPending int) (*topology.Topology, *core.Assignment) {
	t.Helper()
	b := topology.NewBuilder("pair")
	b.SetMaxSpoutPending(maxPending)
	b.SetSpout("s", 1).SetCPULoad(5).SetMemoryLoad(64).
		SetProfile(topology.ExecProfile{CPUPerTuple: time.Millisecond, TupleBytes: 64})
	b.SetBolt("d", 1).ShuffleGrouping("s").SetCPULoad(5).SetMemoryLoad(64).
		SetProfile(topology.ExecProfile{CPUPerTuple: boltCost, TupleBytes: 64})
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return topo, nil
}

// TestDeadTaskInServiceReturnsCredit is the regression for the boltFire
// credit leak: a bolt killed mid-service used to swallow the in-flight
// tuple without failing its tree, leaking a max-pending credit. With
// max-pending 1, one leak wedged the spout for the rest of the run.
func TestDeadTaskInServiceReturnsCredit(t *testing.T) {
	c, err := cluster.TwoRack(1, 2, cluster.EmulabNodeSpec())
	if err != nil {
		t.Fatalf("TwoRack: %v", err)
	}
	topo, _ := twoNodeChain(t, 50*time.Millisecond, 1)
	a := core.NewAssignment("pair", "manual")
	a.Place(0, core.Placement{Node: c.NodeIDs()[0], Slot: 0})
	a.Place(1, core.Placement{Node: c.NodeIDs()[1], Slot: 0})

	sim, err := New(c, Config{Duration: 3 * time.Second, MetricsWindow: 500 * time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	obs := &collector{}
	if err := sim.SetObserver(obs); err != nil {
		t.Fatalf("SetObserver: %v", err)
	}
	if err := sim.AddTopology(topo, a); err != nil {
		t.Fatalf("AddTopology: %v", err)
	}
	// Kill the bolt's node while it is mid-service (50ms services back to
	// back: it is essentially always busy).
	if err := sim.FailNodeAt(c.NodeIDs()[1], 1100*time.Millisecond); err != nil {
		t.Fatalf("FailNodeAt: %v", err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.TuplesDropped == 0 {
		t.Error("in-service tuple of the dead bolt was not counted in TuplesDropped")
	}
	// The spout must keep emitting after the failure (credits recovered);
	// before the fix it wedged with inFlight stuck at max-pending.
	last := len(obs.windows) - 1
	if got := obs.spoutEmittedIn(last); got == 0 {
		t.Errorf("spout wedged after node failure: 0 emissions in final window")
	}
	if tr := res.Topology("pair"); tr.TuplesEmitted < 100 {
		t.Errorf("emitted %d, want spout to free-run after failure", tr.TuplesEmitted)
	}
}

// TestObserverSamplesWindows checks the metrics tap: one sample per task
// per window, utilizations and queue fills in range, deterministic count.
func TestObserverSamplesWindows(t *testing.T) {
	topo := chainTopo(t, 2, 150*time.Microsecond, 100*time.Microsecond, 256, 20)
	c := emulabCluster(t)
	state := core.NewGlobalState(c)
	a, err := core.NewResourceAwareScheduler().Schedule(topo, c, state)
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	sim, err := New(c, shortCfg())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	obs := &collector{}
	if err := sim.SetObserver(obs); err != nil {
		t.Fatalf("SetObserver: %v", err)
	}
	if err := sim.AddTopology(topo, a); err != nil {
		t.Fatalf("AddTopology: %v", err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got, want := len(obs.windows), 10; got != want {
		t.Fatalf("windows = %d, want %d", got, want)
	}
	for w, samples := range obs.windows {
		if len(samples) != topo.TotalTasks() {
			t.Fatalf("window %d: %d samples, want %d", w, len(samples), topo.TotalTasks())
		}
		for _, s := range samples {
			if s.Window != w {
				t.Errorf("window index %d inside flush %d", s.Window, w)
			}
			if u := s.Utilization(); u < 0 || u > 1 {
				t.Errorf("utilization %v out of range", u)
			}
			if s.QueueCap != shortCfg().QueueCapacity && s.QueueCap != 128 {
				t.Errorf("queue cap %d not propagated", s.QueueCap)
			}
			if s.Slowdown < 1 {
				t.Errorf("slowdown %v < 1", s.Slowdown)
			}
		}
	}
	// Work flowed, so the busiest component must show nonzero processing.
	var processed int64
	for _, s := range obs.windows[len(obs.windows)-1] {
		processed += s.Processed
	}
	if processed == 0 {
		t.Error("no processing observed in final window")
	}
	if err := sim.SetObserver(nil); err == nil {
		t.Error("SetObserver after start accepted")
	}
}

// TestReassignRelievesOvercommit runs the chain packed onto one node with a
// mis-declared heavy stage, then migrates the heavy tasks to idle nodes
// mid-run: post-migration windows must outperform pre-migration ones.
func TestReassignRelievesOvercommit(t *testing.T) {
	c := emulabCluster(t)
	ids := c.NodeIDs()
	b := topology.NewBuilder("elastic")
	b.SetSpout("s", 1).SetCPULoad(10).SetMemoryLoad(64).
		SetProfile(topology.ExecProfile{CPUPerTuple: 100 * time.Microsecond, TupleBytes: 64})
	// Declared light (10) but truly heavy (90 points): packing four of
	// these on one 100-point node overcommits it 3.7x.
	b.SetBolt("work", 4).ShuffleGrouping("s").SetCPULoad(10).SetMemoryLoad(64).
		SetProfile(topology.ExecProfile{CPUPerTuple: 2 * time.Millisecond, TupleBytes: 64, CPUPoints: 90})
	b.SetBolt("z", 1).ShuffleGrouping("work").SetCPULoad(10).SetMemoryLoad(64).
		SetProfile(topology.ExecProfile{CPUPerTuple: 100 * time.Microsecond, TupleBytes: 64})
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	packed := core.NewAssignment("elastic", "manual")
	for _, task := range topo.Tasks() {
		packed.Place(task.ID, core.Placement{Node: ids[0], Slot: 0})
	}

	cfg := Config{Duration: 12 * time.Second, MetricsWindow: time.Second, WarmupWindows: 1}
	sim, err := New(c, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sim.AddTopology(topo, packed); err != nil {
		t.Fatalf("AddTopology: %v", err)
	}
	if err := sim.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := sim.RunTo(6 * time.Second); err != nil {
		t.Fatalf("RunTo: %v", err)
	}
	// Spread the heavy bolts across idle same-rack nodes.
	spread := core.NewAssignment("elastic", "manual")
	for _, task := range topo.Tasks() {
		p := packed.Placements[task.ID]
		if task.Component == "work" && task.Index > 0 {
			p = core.Placement{Node: ids[task.Index], Slot: 0}
		}
		spread.Place(task.ID, p)
	}
	moved, err := sim.Reassign("elastic", spread)
	if err != nil {
		t.Fatalf("Reassign: %v", err)
	}
	if moved != 3 {
		t.Fatalf("moved = %d, want 3", moved)
	}
	res, err := sim.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	tr := res.Topology("elastic")
	pre := tr.SinkSeries[4] // steady overcommitted window
	post := tr.SinkSeries[len(tr.SinkSeries)-1]
	if post < 2*pre {
		t.Errorf("migration did not relieve overcommit: pre=%v post=%v series=%v",
			pre, post, tr.SinkSeries)
	}
	if tr.NodesUsed != 4 {
		t.Errorf("NodesUsed = %d after migration, want 4", tr.NodesUsed)
	}

	// Lifecycle and validation errors.
	if _, err := sim.Reassign("elastic", spread); err == nil {
		t.Error("Reassign after Finish accepted")
	}
	if _, err := sim.Finish(); err == nil {
		t.Error("second Finish accepted")
	}
}

// TestReassignValidation covers the error paths of the epoch API.
func TestReassignValidation(t *testing.T) {
	c := emulabCluster(t)
	topo := chainTopo(t, 1, time.Millisecond, time.Millisecond, 128, 10)
	state := core.NewGlobalState(c)
	a, err := core.NewResourceAwareScheduler().Schedule(topo, c, state)
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	sim, err := New(c, shortCfg())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sim.AddTopology(topo, a); err != nil {
		t.Fatalf("AddTopology: %v", err)
	}
	if _, err := sim.Reassign("chain", a); err == nil {
		t.Error("Reassign before Start accepted")
	}
	if err := sim.RunTo(time.Second); err == nil {
		t.Error("RunTo before Start accepted")
	}
	if _, err := sim.Finish(); err == nil {
		t.Error("Finish before Start accepted")
	}
	if err := sim.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := sim.Start(); err == nil {
		t.Error("second Start accepted")
	}
	if _, err := sim.Reassign("ghost", a); err == nil {
		t.Error("unknown topology accepted")
	}
	other := core.NewAssignment("other", "x")
	if _, err := sim.Reassign("chain", other); err == nil {
		t.Error("mismatched assignment accepted")
	}
	incomplete := core.NewAssignment("chain", "x")
	if _, err := sim.Reassign("chain", incomplete); err == nil {
		t.Error("incomplete assignment accepted")
	}
	bad := core.NewAssignment("chain", "x")
	for _, task := range topo.Tasks() {
		bad.Place(task.ID, core.Placement{Node: "ghost-node", Slot: 0})
	}
	if _, err := sim.Reassign("chain", bad); err == nil {
		t.Error("unknown node accepted")
	}
	// Identical assignment: a no-op, not an error.
	if moved, err := sim.Reassign("chain", a); err != nil || moved != 0 {
		t.Errorf("no-op Reassign = %d, %v", moved, err)
	}
	if _, err := sim.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}
