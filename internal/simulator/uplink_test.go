package simulator

import (
	"testing"
	"time"

	"rstorm/internal/cluster"
	"rstorm/internal/core"
	"rstorm/internal/topology"
)

// crossRackPair builds a 2-rack cluster with one node per rack and a
// spout→sink topology pinned across the rack boundary, so every tuple
// crosses the uplink.
func crossRackRun(t *testing.T, uplinkMbps float64, tupleBytes, maxPending int) float64 {
	t.Helper()
	model := cluster.DefaultNetworkModel()
	model.InterRackMbps = uplinkMbps
	c, err := cluster.NewBuilder().
		SetNetworkModel(model).
		AddNode("a", "rack-a", cluster.EmulabNodeSpec()).
		AddNode("b", "rack-b", cluster.EmulabNodeSpec()).
		Build()
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	b := topology.NewBuilder("wire")
	b.SetMaxSpoutPending(maxPending)
	b.SetSpout("s", 1).SetCPULoad(5).SetMemoryLoad(64).
		SetProfile(topology.ExecProfile{CPUPerTuple: 5 * time.Microsecond, TupleBytes: tupleBytes})
	b.SetBolt("d", 1).ShuffleGrouping("s").SetCPULoad(5).SetMemoryLoad(64).
		SetProfile(topology.ExecProfile{CPUPerTuple: 5 * time.Microsecond, TupleBytes: tupleBytes})
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	a := core.NewAssignment("wire", "manual")
	a.Place(0, core.Placement{Node: "a", Slot: 0})
	a.Place(1, core.Placement{Node: "b", Slot: 0})

	sim, err := New(c, Config{Duration: 10 * time.Second, MetricsWindow: time.Second, WarmupWindows: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sim.AddTopology(topo, a); err != nil {
		t.Fatalf("AddTopology: %v", err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res.Topology("wire").MeanSinkThroughput
}

func TestUplinkBandwidthCapsInterRackThroughput(t *testing.T) {
	// With a 10 Mbps uplink and 1 KB tuples, the pipe sustains ~1220
	// tuples/s even though the 100 Mbps NICs could do ~12k.
	slow := crossRackRun(t, 10, 1024, 4096)
	perSec := slow // window = 1s
	if perSec < 900 || perSec > 1400 {
		t.Errorf("10 Mbps uplink throughput = %.0f tuples/s, want ~1220", perSec)
	}
	// Quadrupling the uplink roughly quadruples throughput while the
	// uplink remains the bottleneck.
	faster := crossRackRun(t, 40, 1024, 4096)
	if ratio := faster / slow; ratio < 3 || ratio > 5 {
		t.Errorf("4x uplink => ratio %.2f, want ~4", ratio)
	}
}

func TestUnlimitedUplinkFallsBackToNIC(t *testing.T) {
	// InterRackMbps = 0 disables the uplink stage; the NIC (100 Mbps,
	// ~12.2k tuples/s at 1 KB) becomes the cap.
	unlimited := crossRackRun(t, 0, 1024, 4096)
	if unlimited < 10000 || unlimited > 13500 {
		t.Errorf("NIC-bound throughput = %.0f tuples/s, want ~12200", unlimited)
	}
}

func TestMaxPendingBoundsThroughputAcrossLatency(t *testing.T) {
	// Closed-loop flow control: with a tiny pending window and a 2 ms
	// one-way inter-rack latency, throughput ≈ pending / RTT-ish, far
	// below bandwidth limits. Doubling pending ~doubles throughput.
	p4 := crossRackRun(t, 0, 64, 4)
	p8 := crossRackRun(t, 0, 64, 8)
	if p4 <= 0 {
		t.Fatal("no throughput")
	}
	if ratio := p8 / p4; ratio < 1.6 || ratio > 2.4 {
		t.Errorf("2x pending => ratio %.2f, want ~2", ratio)
	}
	// Sanity: latency-bound means well under the NIC's ~190k tuples/s
	// capacity for 64 B tuples.
	if p8 > 20000 {
		t.Errorf("throughput %.0f looks bandwidth-bound, want latency-bound", p8)
	}
}

func TestTupleTimeoutExpiresSlowTuples(t *testing.T) {
	// A timeout far below the path latency expires everything: emitted
	// flows but nothing counts as delivered.
	model := cluster.DefaultNetworkModel()
	model.LatencyInterRack = 50 * time.Millisecond
	c, err := cluster.NewBuilder().
		SetNetworkModel(model).
		AddNode("a", "rack-a", cluster.EmulabNodeSpec()).
		AddNode("b", "rack-b", cluster.EmulabNodeSpec()).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	b := topology.NewBuilder("late")
	b.SetSpout("s", 1).SetCPULoad(5).SetMemoryLoad(64).
		SetProfile(topology.ExecProfile{CPUPerTuple: time.Millisecond, TupleBytes: 64})
	b.SetBolt("d", 1).ShuffleGrouping("s").SetCPULoad(5).SetMemoryLoad(64).
		SetProfile(topology.ExecProfile{CPUPerTuple: time.Millisecond, TupleBytes: 64})
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := core.NewAssignment("late", "manual")
	a.Place(0, core.Placement{Node: "a", Slot: 0})
	a.Place(1, core.Placement{Node: "b", Slot: 0})
	sim, err := New(c, Config{
		Duration:      5 * time.Second,
		MetricsWindow: time.Second,
		TupleTimeout:  10 * time.Millisecond, // below the 50 ms hop
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.AddTopology(topo, a); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Topology("late")
	if tr.TuplesEmitted == 0 {
		t.Fatal("nothing emitted")
	}
	if tr.TuplesDelivered != 0 {
		t.Errorf("delivered %d, want 0 (all expired)", tr.TuplesDelivered)
	}
	if tr.TuplesExpired == 0 {
		t.Error("no tuples recorded as expired")
	}
}

func TestLocalOrShuffleStaysInWorker(t *testing.T) {
	// With producer and a consumer instance in the same worker,
	// local-or-shuffle never crosses the network: NIC utilization stays
	// zero even though a remote consumer instance exists.
	c, err := cluster.TwoRack(1, 2, cluster.EmulabNodeSpec())
	if err != nil {
		t.Fatal(err)
	}
	b := topology.NewBuilder("local")
	b.SetSpout("s", 1).SetCPULoad(5).SetMemoryLoad(64).
		SetProfile(topology.ExecProfile{CPUPerTuple: 50 * time.Microsecond, TupleBytes: 4096})
	b.SetBolt("d", 2).LocalOrShuffleGrouping("s").SetCPULoad(5).SetMemoryLoad(64).
		SetProfile(topology.ExecProfile{CPUPerTuple: 25 * time.Microsecond, TupleBytes: 4096})
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := core.NewAssignment("local", "manual")
	ids := c.NodeIDs()
	a.Place(0, core.Placement{Node: ids[0], Slot: 0}) // spout
	a.Place(1, core.Placement{Node: ids[0], Slot: 0}) // local consumer
	a.Place(2, core.Placement{Node: ids[1], Slot: 0}) // remote consumer
	sim, err := New(c, Config{Duration: 5 * time.Second, MetricsWindow: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.AddTopology(topo, a); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if util := res.NICUtilization[ids[0]]; util != 0 {
		t.Errorf("NIC used %.3f despite local-or-shuffle with a local target", util)
	}
	if res.Topology("local").TuplesDelivered == 0 {
		t.Error("nothing delivered")
	}
}
