package simulator

import (
	"testing"
	"time"

	"rstorm/internal/cluster"
	"rstorm/internal/core"
	"rstorm/internal/topology"
)

// benchChainTopo is chainTopo for benchmarks (testing.B has no access to
// the *testing.T helpers above).
func benchChainTopo(b *testing.B, par int, spoutCost, boltCost time.Duration) *topology.Topology {
	b.Helper()
	bld := topology.NewBuilder("chain")
	bld.SetSpout("spout", par).
		SetCPULoad(20).SetMemoryLoad(128).
		SetProfile(topology.ExecProfile{CPUPerTuple: spoutCost, TupleBytes: 256})
	bld.SetBolt("work", par).ShuffleGrouping("spout").
		SetCPULoad(20).SetMemoryLoad(128).
		SetProfile(topology.ExecProfile{CPUPerTuple: boltCost, TupleBytes: 256})
	bld.SetBolt("sink", par).ShuffleGrouping("work").
		SetCPULoad(20).SetMemoryLoad(128).
		SetProfile(topology.ExecProfile{CPUPerTuple: boltCost, TupleBytes: 256})
	topo, err := bld.Build()
	if err != nil {
		b.Fatalf("Build: %v", err)
	}
	return topo
}

// benchSim schedules topo on Emulab12 and runs the simulation past the
// warm-up point where the event/tuple/tree free lists have grown to the
// steady population, so the measured region is the amortized-zero régime
// the //rstorm:hotpath annotations claim.
func benchSim(b *testing.B, topo *topology.Topology, cfg Config) (*Simulation, time.Duration) {
	b.Helper()
	c, err := cluster.Emulab12()
	if err != nil {
		b.Fatalf("Emulab12: %v", err)
	}
	state := core.NewGlobalState(c)
	a, err := core.NewResourceAwareScheduler().Schedule(topo, c, state)
	if err != nil {
		b.Fatalf("schedule: %v", err)
	}
	sim, err := New(c, cfg)
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	if err := sim.AddTopology(topo, a); err != nil {
		b.Fatalf("AddTopology: %v", err)
	}
	if err := sim.Start(); err != nil {
		b.Fatalf("Start: %v", err)
	}
	warm := 2 * time.Second
	if err := sim.RunTo(warm); err != nil {
		b.Fatalf("RunTo: %v", err)
	}
	return sim, warm
}

// BenchmarkTuplePathSteadyState drives the full annotated tuple path —
// spoutCycle/spoutFire → routeOutputs → deliver/enqueueAt →
// boltTry/boltFire → recordSink/completeTree, plus the event/tuple/tree
// pools and bounded queues underneath — for 100ms simulated slices.
func BenchmarkTuplePathSteadyState(b *testing.B) {
	topo := benchChainTopo(b, 2, 200*time.Microsecond, 100*time.Microsecond)
	sim, now := benchSim(b, topo, Config{
		Duration:      24 * time.Hour,
		MetricsWindow: time.Second,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 100 * time.Millisecond
		if err := sim.RunTo(now); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTuplePathOverload runs the same path saturated: a slow bolt
// behind tiny queues keeps them full, so every slice also exercises the
// overflow branches (addWaiter, dropTuple → failTuple, tree failure).
func BenchmarkTuplePathOverload(b *testing.B) {
	topo := benchChainTopo(b, 2, 50*time.Microsecond, 400*time.Microsecond)
	sim, now := benchSim(b, topo, Config{
		Duration:      24 * time.Hour,
		MetricsWindow: time.Second,
		QueueCapacity: 4,
		TupleTimeout:  500 * time.Millisecond,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 100 * time.Millisecond
		if err := sim.RunTo(now); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMemoryModelSteadyState adds the memory model so the per-tuple
// residentMemMB/nodeResidentMemMB accounting is on the measured path.
func BenchmarkMemoryModelSteadyState(b *testing.B) {
	topo := benchChainTopo(b, 2, 200*time.Microsecond, 100*time.Microsecond)
	sim, now := benchSim(b, topo, Config{
		Duration:      24 * time.Hour,
		MetricsWindow: time.Second,
		MemoryModel:   true,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 100 * time.Millisecond
		if err := sim.RunTo(now); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLatencyHistogramPath puts Histogram.Observe on the sink path.
func BenchmarkLatencyHistogramPath(b *testing.B) {
	topo := benchChainTopo(b, 2, 200*time.Microsecond, 100*time.Microsecond)
	sim, now := benchSim(b, topo, Config{
		Duration:          24 * time.Hour,
		MetricsWindow:     time.Second,
		LatencyHistograms: true,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 100 * time.Millisecond
		if err := sim.RunTo(now); err != nil {
			b.Fatal(err)
		}
	}
}
