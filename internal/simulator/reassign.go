package simulator

import (
	"fmt"

	"rstorm/internal/cluster"
	"rstorm/internal/core"
)

// Reassign migrates a running topology onto a new assignment between
// epochs (after a RunTo, before the next). It is the simulator half of an
// incremental rebalance: only tasks whose placement changed are touched.
//
// Migration follows Storm's rebalance semantics, scaled down to the tasks
// actually moving: a migrating task's queued input tuples fail (their trees
// release max-pending credits, so spouts replay rather than wedge; the loss
// is counted in Result.TuplesMigrated), parked producers are released, and
// the task resumes empty on its new node. Affected nodes' CPU overcommit
// stretch and their tasks' service times are refrozen, and the run's
// delivery wires are rebuilt for the new placements. Tuples already in
// flight toward a moved task are delivered normally (its queue survives the
// move; only the path metadata was stale for the transition).
//
// It returns the number of tasks migrated (zero when the new assignment is
// identical).
func (s *Simulation) Reassign(topoName string, a *core.Assignment) (int, error) {
	if !s.started {
		return 0, fmt.Errorf("simulation not started")
	}
	if s.finished {
		return 0, fmt.Errorf("simulation already finished")
	}
	var run *topoRun
	for _, r := range s.runs {
		if r.topo.Name() == topoName {
			run = r
			break
		}
	}
	if run == nil {
		return 0, fmt.Errorf("topology %q is not part of this simulation", topoName)
	}
	if a.Topology != topoName {
		return 0, fmt.Errorf("assignment is for %q, topology is %q", a.Topology, topoName)
	}
	if !a.Complete(run.topo) {
		return 0, fmt.Errorf("assignment for %q is incomplete", topoName)
	}

	// Validate every changed placement before mutating anything. A dead
	// task's entry is normalized back to its actual placement rather than
	// rejected: there is no executor left to migrate, and a planner
	// working from measured availability will legitimately want the
	// failed node's tasks elsewhere. The assignment is therefore mutated
	// to record what was really applied, and the returned count is the
	// number of tasks that actually migrated.
	var moving, deadStay []*simTask
	for _, st := range run.ordered {
		np := a.Placements[st.task.ID]
		if np == st.placement {
			continue
		}
		if st.dead {
			deadStay = append(deadStay, st)
			continue
		}
		node, ok := s.nodes[np.Node]
		if !ok {
			return 0, fmt.Errorf("task %d reassigned to unknown node %q", st.task.ID, np.Node)
		}
		if node.dead {
			return 0, fmt.Errorf("task %d reassigned to dead node %q", st.task.ID, np.Node)
		}
		moving = append(moving, st)
	}
	// Validation passed: now (and only now) normalize dead entries and
	// adopt the assignment.
	for _, st := range deadStay {
		a.Placements[st.task.ID] = st.placement
	}
	run.assignment = a
	if len(moving) == 0 {
		return 0, nil
	}

	// Flush the partial window accumulated since the last boundary before
	// anything moves, so the observer's samples attribute the pre-migration
	// slice to the nodes the work actually ran on. A no-op when the epoch
	// boundary coincides with a window flush (the adaptive loop's default).
	s.flushPartialWindow()

	affected := make(map[*simNode]bool, 2*len(moving))
	for _, st := range moving {
		old := st.node
		oldLane := old.lane
		next := s.nodes[a.Placements[st.task.ID].Node]
		// Drain the input queue: the worker restarts empty on the new node.
		// The drain runs on the departing lane — the failed trees and
		// released producers belong to the placement the tuples ran under.
		tuples, unblocked := st.queue.drain()
		for _, tup := range tuples {
			oldLane.migrateTuple(tup)
		}
		for _, comp := range unblocked {
			oldLane.scheduleComplete(0, comp)
		}
		// Migration is a restart: the in-memory working set does not
		// travel with the task, so the memory model's state-growth ramp
		// re-warms from zero on the new node (inert with the model off —
		// handled feeds nothing else).
		st.handled = 0
		// Credit the busy time accrued here to the node it ran on, so
		// end-of-run utilization is attributed per host.
		delta := st.tracker.Busy() - st.creditedBusy
		old.departedWeighted += float64(delta) * st.comp.EffectiveCPUPoints()
		st.creditedBusy = st.tracker.Busy()
		removeTask(old, st)
		next.tasks = append(next.tasks, st)
		next.everHosted = true
		st.node = next
		st.placement = a.Placements[st.task.ID]
		affected[old] = true
		affected[next] = true
	}
	// Refreeze contention on every node whose task set changed, then
	// re-resolve the run's delivery edges for the new placements.
	for _, id := range s.order {
		if n := s.nodes[id]; affected[n] {
			s.freezeNode(n)
		}
	}
	s.buildRouters(run)
	if s.sharded {
		// Pending events homed by a moved task must follow it to its new
		// lane before the next window, or two lanes would mutate it.
		s.rehomeEvents()
	}
	return len(moving), nil
}

// ReassignRestarting is Reassign plus executor restarts: tasks in the
// restart set that are currently dead are revived at their assignment's
// placement (which must be a live node) — the failover path after a node
// crash, and the re-spread path after the node returns. Like a revive,
// a restarted executor begins empty (working set re-warms, queue empty)
// and a restarted spout re-enters its cycle, parking until stale trees
// from before the crash finish draining credits. Live tasks and dead
// tasks outside the restart set follow plain Reassign semantics. Returns
// the number of tasks migrated or restarted.
func (s *Simulation) ReassignRestarting(topoName string, a *core.Assignment, restart map[int]bool) (int, error) {
	if !s.started {
		return 0, fmt.Errorf("simulation not started")
	}
	if s.finished {
		return 0, fmt.Errorf("simulation already finished")
	}
	var run *topoRun
	for _, r := range s.runs {
		if r.topo.Name() == topoName {
			run = r
			break
		}
	}
	if run == nil {
		return 0, fmt.Errorf("topology %q is not part of this simulation", topoName)
	}
	if a.Topology != topoName {
		return 0, fmt.Errorf("assignment is for %q, topology is %q", a.Topology, topoName)
	}
	if !a.Complete(run.topo) {
		return 0, fmt.Errorf("assignment for %q is incomplete", topoName)
	}

	// Validate everything before mutating anything (same discipline as
	// Reassign). Dead tasks outside the restart set normalize back to
	// their actual placement; restarting tasks must land on live nodes.
	var moving, restarting, deadStay []*simTask
	for _, st := range run.ordered {
		np := a.Placements[st.task.ID]
		if st.dead && restart[st.task.ID] {
			node, ok := s.nodes[np.Node]
			if !ok {
				return 0, fmt.Errorf("task %d restarted on unknown node %q", st.task.ID, np.Node)
			}
			if node.dead {
				return 0, fmt.Errorf("task %d restarted on dead node %q", st.task.ID, np.Node)
			}
			restarting = append(restarting, st)
			continue
		}
		if np == st.placement {
			continue
		}
		if st.dead {
			deadStay = append(deadStay, st)
			continue
		}
		node, ok := s.nodes[np.Node]
		if !ok {
			return 0, fmt.Errorf("task %d reassigned to unknown node %q", st.task.ID, np.Node)
		}
		if node.dead {
			return 0, fmt.Errorf("task %d reassigned to dead node %q", st.task.ID, np.Node)
		}
		moving = append(moving, st)
	}
	for _, st := range deadStay {
		a.Placements[st.task.ID] = st.placement
	}
	run.assignment = a
	if len(moving) == 0 && len(restarting) == 0 {
		return 0, nil
	}

	s.flushPartialWindow()
	affected := make(map[*simNode]bool, 2*(len(moving)+len(restarting)))
	for _, st := range moving {
		old := st.node
		oldLane := old.lane
		next := s.nodes[a.Placements[st.task.ID].Node]
		tuples, unblocked := st.queue.drain()
		for _, tup := range tuples {
			oldLane.migrateTuple(tup)
		}
		for _, comp := range unblocked {
			oldLane.scheduleComplete(0, comp)
		}
		st.handled = 0
		delta := st.tracker.Busy() - st.creditedBusy
		old.departedWeighted += float64(delta) * st.comp.EffectiveCPUPoints()
		st.creditedBusy = st.tracker.Busy()
		removeTask(old, st)
		next.tasks = append(next.tasks, st)
		next.everHosted = true
		st.node = next
		st.placement = a.Placements[st.task.ID]
		affected[old] = true
		affected[next] = true
	}
	for _, st := range restarting {
		old := st.node
		next := s.nodes[a.Placements[st.task.ID].Node]
		// The queue was drained when the node crashed; credit the busy
		// time the executor accrued on its old (possibly still-dead) host
		// so end-of-run utilization attribution stays per-host-honest.
		delta := st.tracker.Busy() - st.creditedBusy
		old.departedWeighted += float64(delta) * st.comp.EffectiveCPUPoints()
		st.creditedBusy = st.tracker.Busy()
		st.handled = 0
		removeTask(old, st)
		next.tasks = append(next.tasks, st)
		next.everHosted = true
		st.node = next
		st.placement = a.Placements[st.task.ID]
		st.dead = false
		st.busy = false
		st.parked = false
		// outBuf/outIdx stay, as in revive: a stale delivery sequence from
		// before the crash finishes deterministically; new emissions reset
		// the cursor themselves.
		affected[old] = true
		affected[next] = true
	}
	// refreeze (not the inline loop) because a restarting task's old node
	// may still be dead; dead nodes must not refreeze.
	s.refreeze(affected)
	s.buildRouters(run)
	if s.sharded {
		s.rehomeEvents()
	}
	for _, st := range restarting {
		if st.isSpout == 1 {
			st.node.lane.scheduleTask(0, evSpoutCycle, st)
		}
	}
	return len(moving) + len(restarting), nil
}

// DeadNodes returns the nodes killed by failure injection so far, in
// cluster declaration order. Adaptive replanners zero these out of their
// availability picture.
func (s *Simulation) DeadNodes() []cluster.NodeID {
	var out []cluster.NodeID
	for _, id := range s.order {
		if s.nodes[id].dead {
			out = append(out, id)
		}
	}
	return out
}

// removeTask deletes st from n's task list, preserving order so contention
// refreezes stay deterministic.
func removeTask(n *simNode, st *simTask) {
	for i, t := range n.tasks {
		if t == st {
			n.tasks = append(n.tasks[:i], n.tasks[i+1:]...)
			return
		}
	}
}
