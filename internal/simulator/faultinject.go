package simulator

import (
	"fmt"
	"time"

	"rstorm/internal/cluster"
	"rstorm/internal/faults"
	"rstorm/internal/trace"
)

// Fault injection (DESIGN.md §7): the simulator consumes the declarative
// fault model of internal/faults. Crash kills a node permanently-until-
// recovered (the old FailNodeAt semantics), Recover returns its capacity
// and refreezes contention — the node's dead executors stay dead until a
// control plane re-places or restarts them (ReassignRestarting) — and
// Slow transiently stretches its service times by a factor.
//
// Injection is legal both pre-start (the schedule is installed in Start,
// exactly as FailNodeAt always was) and mid-run between RunTo epochs,
// which is what lets an epoch-driven chaos harness script faults against
// a paused simulation.

// FaultRecord is one fault the simulation actually applied, logged in
// virtual-time order. No-op injections (crashing a dead node, recovering
// a healthy one) are not recorded.
type FaultRecord struct {
	Kind faults.Kind
	Node cluster.NodeID
	At   time.Duration
}

// String renders the record in schedule syntax.
func (fr FaultRecord) String() string {
	return faults.Fault{Kind: fr.Kind, Node: fr.Node, At: fr.At}.String()
}

// spoutReplay is one failed tuple tree queued for re-emission on its
// spout. The tree's max-pending credit is held while the entry waits.
type spoutReplay struct {
	key     uint64
	attempt int
}

// InjectFault schedules a fault event. Before Start it joins the pending
// schedule (identical behavior to the original FailNodeAt path); mid-run
// it is scheduled onto the live event queue and must not be in the past.
// Simulation satisfies faults.Injector, so a parsed faults.Schedule can
// be applied wholesale via Schedule.Apply(sim).
func (s *Simulation) InjectFault(f faults.Fault) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if _, ok := s.nodes[f.Node]; !ok {
		return fmt.Errorf("unknown node %q", f.Node)
	}
	if !s.started {
		s.schedule = append(s.schedule, f)
		return nil
	}
	if s.finished {
		return fmt.Errorf("simulation already finished")
	}
	now := s.now()
	if f.At < now {
		return fmt.Errorf("fault %s is in the past (now %v)", f, now)
	}
	// The fault fires on the faulted node's lane: it mutates that lane's
	// node, tasks, and links, so it must run inside that lane's loop.
	ln := s.nodes[f.Node].lane
	ln.eng.Schedule(f.At-now, func() { ln.applyFault(f) })
	return nil
}

// applyFault dispatches one fault event inside the faulted node's lane.
// Redundant events (crash of a dead node, recover of a healthy one) are
// ignored rather than logged, so the fault log records state transitions
// only. Sharded lanes buffer their records (mergeLaneFaults folds them
// into the shared log at barriers); the legacy lane appends directly.
func (ln *simLane) applyFault(f faults.Fault) {
	s := ln.sim
	n := s.nodes[f.Node]
	if n == nil {
		return
	}
	switch f.Kind {
	case faults.Crash:
		if n.dead {
			return
		}
		ln.failNode(f.Node)
	case faults.Recover:
		if !n.dead && n.slowFactor == 1 {
			return
		}
		ln.recoverNode(n)
	case faults.Slow:
		if n.dead {
			return
		}
		s.slowNode(n, f.Factor)
	default:
		return
	}
	fr := FaultRecord{Kind: f.Kind, Node: f.Node, At: ln.eng.Now()}
	if s.sharded {
		ln.faultBuf = append(ln.faultBuf, fr)
	} else {
		s.faultLog = append(s.faultLog, fr)
	}
	s.journalRecord(trace.CodeFaultInjected, "", string(f.Node), -1, fr.String())
}

// recoverNode brings a node back: capacity returns, its NIC revives (the
// link's alive closure reads node.dead), any slow-fault degradation
// clears, and contention refreezes. The node's executors stay dead — a
// recovered machine has capacity, not state; re-placing work on it is the
// control plane's job (ReassignRestarting / the failover round).
func (ln *simLane) recoverNode(n *simNode) {
	if n.dead {
		n.dead = false
		n.downtime += ln.eng.Now() - n.crashedAt
	}
	n.slowFactor = 1
	ln.sim.freezeNode(n)
}

// slowNode applies transient degradation: every service time on the node
// stretches by factor until it recovers.
func (s *Simulation) slowNode(n *simNode, factor float64) {
	n.slowFactor = factor
	s.freezeNode(n)
}

// handleSpoutReplay runs when a failed tree's backoff expires: the replay
// joins its spout's queue and the spout is woken if parked. If the spout
// died while the backoff was pending, the tree is abandoned and its held
// credit returned, so a later restart of the spout starts with honest
// max-pending accounting.
func (ln *simLane) handleSpoutReplay(t *simTask, key uint64, attempt int) {
	if t.dead {
		t.inFlight--
		ln.lostTrees++
		return
	}
	t.replayQ = append(t.replayQ, spoutReplay{key: key, attempt: attempt})
	if t.parked {
		t.parked = false
		ln.scheduleTask(0, evSpoutCycle, t)
	}
}

// Faults returns the fault events applied so far, in virtual-time order.
func (s *Simulation) Faults() []FaultRecord {
	out := make([]FaultRecord, len(s.faultLog))
	copy(out, s.faultLog)
	return out
}
