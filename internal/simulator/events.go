package simulator

import (
	"time"
)

// The simulator's hot path schedules small typed event records instead of
// closures: a closure per tuple per hop is an allocation per tuple per hop,
// and the recursive continuation chains (deliverSeq's next(i+1) closures)
// made steady-state GC pressure proportional to delivered tuples. Event
// records, tuples, and tuple trees are recycled on single-threaded free
// lists owned by the Simulation, so after warm-up the event loop allocates
// nothing. The lists are plain LIFO stacks — deterministic, no sync.Pool
// nondeterminism — and recycling never affects simulation behaviour because
// no logic depends on object identity.

// Event kinds dispatched by simEvent.Fire.
const (
	evSpoutCycle  uint8 = iota // run spoutCycle on task
	evSpoutFire                // spout service complete: emit a root tuple
	evBoltTry                  // attempt to start the next queued tuple
	evBoltFire                 // bolt service complete: emit outputs
	evArrive                   // tuple reaches dest's input queue after latency
	evLinkDone                 // link finished serializing its head transfer
	evComplete                 // fire an acceptance completion
	evWindowFlush              // metrics-window boundary: feed the observer
	evOOMCheck                 // memory-model boundary: enforce the hard axis
	evSpoutReplay              // replay backoff expired: queue a re-emission
)

// Completion kinds: what to do when a transfer/enqueue is accepted.
const (
	compNone    uint8 = iota // no completion (zero value)
	compDeliver              // advance task's in-progress delivery sequence
	compRelease              // return a window slot to link
)

// completion is the typed replacement for the old `accepted func()`
// continuation: it names the one thing that happens when a tuple hand-off
// is admitted downstream. Stored by value in queue waiters and transfers.
type completion struct {
	kind uint8
	task *simTask // compDeliver: the emitter whose delivery advances
	link *link    // compRelease: the link regaining a window slot
}

// simEvent is one pooled, typed event record. A single struct with a kind
// tag (rather than one type per kind) keeps the free list trivially shared
// across all event kinds.
type simEvent struct {
	s    *Simulation
	kind uint8
	task *simTask   // spout/bolt the event concerns
	tup  *tuple     // evBoltFire, evArrive
	dest *simTask   // evArrive
	link *link      // evLinkDone
	tr   transfer   // evLinkDone
	comp completion // evArrive, evComplete

	// Replay payload (evSpoutReplay): the failed tree's key and the
	// attempt number of the coming re-emission.
	key     uint64
	attempt int
}

// Fire implements des.Event. It copies what it needs, returns the record
// to the pool, then dispatches, so handlers may immediately reuse pooled
// records for the events they schedule.
//
//rstorm:hotpath
func (e *simEvent) Fire() {
	s := e.s
	switch e.kind {
	case evSpoutCycle:
		t := e.task
		s.freeEvent(e)
		s.spoutCycle(t)
	case evSpoutFire:
		t := e.task
		s.freeEvent(e)
		s.spoutFire(t)
	case evBoltTry:
		t := e.task
		s.freeEvent(e)
		s.boltTry(t)
	case evBoltFire:
		t, tup := e.task, e.tup
		s.freeEvent(e)
		s.boltFire(t, tup)
	case evArrive:
		dest, tup, comp := e.dest, e.tup, e.comp
		s.freeEvent(e)
		s.enqueueAt(dest, tup, comp)
	case evLinkDone:
		n, tr := e.link, e.tr
		s.freeEvent(e)
		s.linkDone(n, tr)
	case evComplete:
		comp := e.comp
		s.freeEvent(e)
		s.complete(comp)
	case evWindowFlush:
		s.freeEvent(e)
		s.windowFlush()
	case evOOMCheck:
		s.freeEvent(e)
		s.oomCheck()
	case evSpoutReplay:
		t, key, attempt := e.task, e.key, e.attempt
		s.freeEvent(e)
		s.handleSpoutReplay(t, key, attempt)
	}
}

//rstorm:hotpath
func (s *Simulation) newEvent(kind uint8) *simEvent {
	if n := len(s.eventPool); n > 0 {
		ev := s.eventPool[n-1]
		s.eventPool = s.eventPool[:n-1]
		ev.kind = kind
		return ev
	}
	return &simEvent{s: s, kind: kind}
}

//rstorm:hotpath
func (s *Simulation) freeEvent(ev *simEvent) {
	*ev = simEvent{s: ev.s}
	s.eventPool = append(s.eventPool, ev)
}

// scheduleTask schedules a task-only event (spout cycle/fire, bolt try).
//
//rstorm:hotpath
func (s *Simulation) scheduleTask(delay time.Duration, kind uint8, t *simTask) {
	ev := s.newEvent(kind)
	ev.task = t
	s.engine.ScheduleEvent(delay, ev)
}

// scheduleComplete schedules a completion to fire after delay.
//
//rstorm:hotpath
func (s *Simulation) scheduleComplete(delay time.Duration, comp completion) {
	ev := s.newEvent(evComplete)
	ev.comp = comp
	s.engine.ScheduleEvent(delay, ev)
}

// scheduleArrive schedules tup's arrival at dest's input queue.
//
//rstorm:hotpath
func (s *Simulation) scheduleArrive(delay time.Duration, dest *simTask, tup *tuple, comp completion) {
	ev := s.newEvent(evArrive)
	ev.dest = dest
	ev.tup = tup
	ev.comp = comp
	s.engine.ScheduleEvent(delay, ev)
}

// complete fires an acceptance completion.
//
//rstorm:hotpath
func (s *Simulation) complete(c completion) {
	switch c.kind {
	case compDeliver:
		c.task.outIdx++
		s.stepDeliver(c.task)
	case compRelease:
		c.link.inFlight--
		c.link.startServe(s)
	}
}

//rstorm:hotpath
func (s *Simulation) newTuple(bytes int, key uint64, created time.Duration, tr *tree) *tuple {
	if n := len(s.tuplePool); n > 0 {
		tup := s.tuplePool[n-1]
		s.tuplePool = s.tuplePool[:n-1]
		tup.bytes = bytes
		tup.key = key
		tup.created = created
		tup.tree = tr
		return tup
	}
	return &tuple{bytes: bytes, key: key, created: created, tree: tr}
}

//rstorm:hotpath
func (s *Simulation) freeTuple(tup *tuple) {
	tup.tree = nil
	s.tuplePool = append(s.tuplePool, tup)
}

//rstorm:hotpath
func (s *Simulation) newTree(spout *simTask) *tree {
	if n := len(s.treePool); n > 0 {
		tr := s.treePool[n-1]
		s.treePool = s.treePool[:n-1]
		tr.spout = spout
		tr.pending = 0
		tr.failed = false
		tr.key = 0
		tr.attempt = 0
		tr.trace = 0
		return tr
	}
	return &tree{spout: spout}
}

//rstorm:hotpath
func (s *Simulation) freeTree(tr *tree) {
	tr.spout = nil
	s.treePool = append(s.treePool, tr)
}
