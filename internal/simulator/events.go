package simulator

import (
	"time"
)

// The simulator's hot path schedules small typed event records instead of
// closures: a closure per tuple per hop is an allocation per tuple per hop,
// and the recursive continuation chains (deliverSeq's next(i+1) closures)
// made steady-state GC pressure proportional to delivered tuples. Event
// records, tuples, and tuple trees are recycled on single-threaded free
// lists owned by each lane, so after warm-up the event loop allocates
// nothing. The lists are plain LIFO stacks — deterministic, no sync.Pool
// nondeterminism — and recycling never affects simulation behaviour because
// no logic depends on object identity.

// Event kinds dispatched by simEvent.Fire.
const (
	evSpoutCycle  uint8 = iota // run spoutCycle on task
	evSpoutFire                // spout service complete: emit a root tuple
	evBoltTry                  // attempt to start the next queued tuple
	evBoltFire                 // bolt service complete: emit outputs
	evArrive                   // tuple reaches dest's input queue after latency
	evLinkDone                 // link finished serializing its head transfer
	evComplete                 // fire an acceptance completion
	evWindowFlush              // metrics-window boundary: feed the observer
	evOOMCheck                 // memory-model boundary: enforce the hard axis
	evSpoutReplay              // replay backoff expired: queue a re-emission
	evTreeAck                  // cross-lane tuple-tree delta landing at home
)

// Completion kinds: what to do when a transfer/enqueue is accepted.
const (
	compNone    uint8 = iota // no completion (zero value)
	compDeliver              // advance task's in-progress delivery sequence
	compRelease              // return a window slot to link
)

// completion is the typed replacement for the old `accepted func()`
// continuation: it names the one thing that happens when a tuple hand-off
// is admitted downstream. Stored by value in queue waiters and transfers.
type completion struct {
	kind uint8
	task *simTask // compDeliver: the emitter whose delivery advances
	link *link    // compRelease: the link regaining a window slot
}

// simEvent is one pooled, typed event record. A single struct with a kind
// tag (rather than one type per kind) keeps the free list trivially shared
// across all event kinds. ln is the lane whose engine fires the event; a
// record crossing lanes (via rehomeEvents) is re-tagged before scheduling.
type simEvent struct {
	ln   *simLane
	kind uint8
	task *simTask   // spout/bolt the event concerns
	tup  *tuple     // evBoltFire, evArrive
	dest *simTask   // evArrive
	link *link      // evLinkDone
	tr   transfer   // evLinkDone
	comp completion // evArrive, evComplete

	// Replay payload (evSpoutReplay): the failed tree's key and the
	// attempt number of the coming re-emission.
	key     uint64
	attempt int

	// Tree-ack payload (evTreeAck): see simLane.ackTree.
	tree   *tree
	delta  int32
	failed bool
}

// Fire implements des.Event. It copies what it needs, returns the record
// to the pool, then dispatches, so handlers may immediately reuse pooled
// records for the events they schedule.
//
//rstorm:hotpath
func (e *simEvent) Fire() {
	ln := e.ln
	switch e.kind {
	case evSpoutCycle:
		t := e.task
		ln.freeEvent(e)
		ln.spoutCycle(t)
	case evSpoutFire:
		t := e.task
		ln.freeEvent(e)
		ln.spoutFire(t)
	case evBoltTry:
		t := e.task
		ln.freeEvent(e)
		ln.boltTry(t)
	case evBoltFire:
		t, tup := e.task, e.tup
		ln.freeEvent(e)
		ln.boltFire(t, tup)
	case evArrive:
		dest, tup, comp := e.dest, e.tup, e.comp
		ln.freeEvent(e)
		ln.enqueueAt(dest, tup, comp)
	case evLinkDone:
		n, tr := e.link, e.tr
		ln.freeEvent(e)
		ln.linkDone(n, tr)
	case evComplete:
		comp := e.comp
		ln.freeEvent(e)
		ln.complete(comp)
	case evWindowFlush:
		ln.freeEvent(e)
		ln.sim.windowFlush()
	case evOOMCheck:
		ln.freeEvent(e)
		ln.oomCheck()
	case evSpoutReplay:
		t, key, attempt := e.task, e.key, e.attempt
		ln.freeEvent(e)
		ln.handleSpoutReplay(t, key, attempt)
	case evTreeAck:
		tr, delta, failed := e.tree, e.delta, e.failed
		ln.freeEvent(e)
		ln.applyAck(tr, int(delta), failed)
	}
}

//rstorm:hotpath
func (ln *simLane) newEvent(kind uint8) *simEvent {
	if n := len(ln.eventPool); n > 0 {
		ev := ln.eventPool[n-1]
		ln.eventPool = ln.eventPool[:n-1]
		ev.kind = kind
		return ev
	}
	return &simEvent{ln: ln, kind: kind}
}

//rstorm:hotpath
func (ln *simLane) freeEvent(ev *simEvent) {
	*ev = simEvent{ln: ln}
	ln.eventPool = append(ln.eventPool, ev)
}

// scheduleTask schedules a task-only event (spout cycle/fire, bolt try) on
// this lane. Task events are always scheduled by the task's own lane.
//
//rstorm:hotpath
func (ln *simLane) scheduleTask(delay time.Duration, kind uint8, t *simTask) {
	ev := ln.newEvent(kind)
	ev.task = t
	ln.eng.ScheduleEvent(delay, ev)
}

// scheduleComplete schedules a completion to fire after delay on the
// completion's home lane. A cross-lane completion is the back-channel of a
// tuple hand-off — the "ack" returning a link window slot or advancing the
// emitter's delivery sequence — so it pays the return network hop: one
// lookahead on top of delay. Same-lane completions (always, in legacy
// mode) fire locally with no added latency.
//
//rstorm:hotpath
func (ln *simLane) scheduleComplete(delay time.Duration, comp completion) {
	home := ln.compHome(comp)
	if home == ln {
		ev := ln.newEvent(evComplete)
		ev.comp = comp
		ln.eng.ScheduleEvent(delay, ev)
		return
	}
	if delay < 0 {
		delay = 0
	}
	ln.out[home.idx].Push(laneMsg{
		at:   ln.eng.Now() + delay + ln.sim.lookahead,
		kind: msgComplete,
		comp: comp,
	})
}

// scheduleArrive schedules tup's arrival at dest's input queue. delay is
// the network latency of the hop; when dest lives on another lane the
// route necessarily crossed racks, so delay is at least the lookahead and
// the arrival rides the outbox to land beyond the current window.
//
//rstorm:hotpath
func (ln *simLane) scheduleArrive(delay time.Duration, dest *simTask, tup *tuple, comp completion) {
	home := dest.node.lane
	if home == ln {
		ev := ln.newEvent(evArrive)
		ev.dest = dest
		ev.tup = tup
		ev.comp = comp
		ln.eng.ScheduleEvent(delay, ev)
		return
	}
	if delay < 0 {
		delay = 0
	}
	ln.out[home.idx].Push(laneMsg{
		at:   ln.eng.Now() + delay,
		kind: msgArrive,
		dest: dest,
		tup:  tup,
		comp: comp,
	})
}

// complete fires an acceptance completion.
//
//rstorm:hotpath
func (ln *simLane) complete(c completion) {
	switch c.kind {
	case compDeliver:
		c.task.outIdx++
		ln.stepDeliver(c.task)
	case compRelease:
		c.link.inFlight--
		c.link.startServe(ln)
	}
}

//rstorm:hotpath
func (ln *simLane) newTuple(bytes int, key uint64, created time.Duration, tr *tree) *tuple {
	if n := len(ln.tuplePool); n > 0 {
		tup := ln.tuplePool[n-1]
		ln.tuplePool = ln.tuplePool[:n-1]
		tup.bytes = bytes
		tup.key = key
		tup.created = created
		tup.tree = tr
		return tup
	}
	return &tuple{bytes: bytes, key: key, created: created, tree: tr}
}

//rstorm:hotpath
func (ln *simLane) freeTuple(tup *tuple) {
	tup.tree = nil
	ln.tuplePool = append(ln.tuplePool, tup)
}

//rstorm:hotpath
func (ln *simLane) newTree(spout *simTask) *tree {
	if n := len(ln.treePool); n > 0 {
		tr := ln.treePool[n-1]
		ln.treePool = ln.treePool[:n-1]
		tr.spout = spout
		tr.pending = 0
		tr.failed = false
		tr.key = 0
		tr.attempt = 0
		tr.trace = 0
		return tr
	}
	return &tree{spout: spout}
}

//rstorm:hotpath
func (ln *simLane) freeTree(tr *tree) {
	tr.spout = nil
	ln.treePool = append(ln.treePool, tr)
}
