package simulator

import (
	"reflect"
	"testing"
	"time"

	"rstorm/internal/cluster"
	"rstorm/internal/core"
	"rstorm/internal/faults"
	"rstorm/internal/topology"
	"rstorm/internal/trace"
)

// Sharded-kernel regression suite (DESIGN.md §11). The kernel's contract is
// that Config.Shards is pure parallelism: for a fixed seed the Result must
// be byte-identical for every Shards >= 1, under faults, replay, the memory
// model, observers, and mid-run reassignment. The suite runs a four-rack
// cluster with placements spread round-robin across racks, so every rack
// pair carries tuples, acks, and backpressure completions.

func shardCounts() []int { return []int{1, 2, 4, 8} }

// shardedCluster is four racks of three Emulab-class nodes: more lanes than
// some worker counts, fewer than others, so the coordinator's block split
// is exercised unevenly in both directions.
func shardedCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	c, err := cluster.TwoRack(4, 3, cluster.EmulabNodeSpec())
	if err != nil {
		t.Fatalf("TwoRack: %v", err)
	}
	return c
}

// spreadAssignment places tasks round-robin across every node, guaranteeing
// cross-rack edges on each stream regardless of what a scheduler would do.
func spreadAssignment(topo *topology.Topology, c *cluster.Cluster) *core.Assignment {
	a := core.NewAssignment(topo.Name(), "spread")
	ids := c.NodeIDs()
	for i, task := range topo.Tasks() {
		a.Placements[task.ID] = core.Placement{Node: ids[i%len(ids)], Slot: 0}
	}
	return a
}

func shardedTopo(t *testing.T) *topology.Topology {
	t.Helper()
	b := topology.NewBuilder("sharded-det")
	b.SetSpout("spout", 4).SetCPULoad(20).SetMemoryLoad(256).
		SetProfile(topology.ExecProfile{CPUPerTuple: 50 * time.Microsecond, TupleBytes: 4096, KeyCardinality: 64})
	b.SetBolt("mid", 4).FieldsGrouping("spout", "key").SetCPULoad(20).SetMemoryLoad(256).
		SetProfile(topology.ExecProfile{CPUPerTuple: 50 * time.Microsecond, TupleBytes: 4096})
	b.SetBolt("sink", 4).ShuffleGrouping("mid").SetCPULoad(20).SetMemoryLoad(256).
		SetProfile(topology.ExecProfile{CPUPerTuple: 50 * time.Microsecond, TupleBytes: 64})
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return topo
}

// windowDigest summarizes one observer flush; captured per window so the
// observer-facing sample stream is part of the cross-shard comparison.
type windowDigest struct {
	window    int
	processed int64
	emitted   int64
	busy      time.Duration
	overflows int64
	remote    int64
}

type digestObserver struct{ windows []windowDigest }

func (d *digestObserver) OnWindow(samples []TaskSample) {
	var w windowDigest
	if len(samples) > 0 {
		w.window = samples[0].Window
	}
	for _, s := range samples {
		w.processed += s.Processed
		w.emitted += s.Emitted
		w.busy += s.Busy
		w.overflows += s.Overflows
		for _, e := range s.Edges {
			if e.Remote {
				w.remote += e.Tuples
			}
		}
	}
	d.windows = append(d.windows, w)
}

// shardedVariant configures one determinism scenario.
type shardedVariant struct {
	name    string
	cfg     Config
	faults  []faults.Fault
	observe bool
}

func shardedVariants() []shardedVariant {
	base := Config{
		Duration:      6 * time.Second,
		MetricsWindow: time.Second,
		Seed:          7,
		TupleTimeout:  2 * time.Second,
	}
	replayCfg := base
	replayCfg.Replay = true
	memCfg := base
	memCfg.MemoryModel = true
	histCfg := base
	histCfg.LatencyHistograms = true
	return []shardedVariant{
		{name: "plain", cfg: base},
		{name: "crash-recover-replay", cfg: replayCfg, faults: []faults.Fault{
			{Kind: faults.Crash, Node: "node-1-0", At: 2 * time.Second},
			{Kind: faults.Recover, Node: "node-1-0", At: 4 * time.Second},
			{Kind: faults.Slow, Node: "node-3-1", At: 1500 * time.Millisecond, Factor: 3},
		}},
		{name: "memory-model", cfg: memCfg},
		{name: "histograms-observer", cfg: histCfg, observe: true},
	}
}

func runSharded(t *testing.T, v shardedVariant, shards int) (*Result, []windowDigest) {
	t.Helper()
	topo := shardedTopo(t)
	c := shardedCluster(t)
	cfg := v.cfg
	cfg.Shards = shards
	sim, err := New(c, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sim.AddTopology(topo, spreadAssignment(topo, c)); err != nil {
		t.Fatalf("AddTopology: %v", err)
	}
	for _, f := range v.faults {
		if err := sim.InjectFault(f); err != nil {
			t.Fatalf("InjectFault(%v): %v", f, err)
		}
	}
	var obs *digestObserver
	if v.observe {
		obs = &digestObserver{}
		if err := sim.SetObserver(obs); err != nil {
			t.Fatalf("SetObserver: %v", err)
		}
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if obs != nil {
		return res, obs.windows
	}
	return res, nil
}

// TestShardedKernelDeterminism is the tentpole invariant: the Result (and
// the observer's window stream) must be byte-identical for every worker
// count, in every scenario, and run-to-run at a fixed count.
func TestShardedKernelDeterminism(t *testing.T) {
	for _, v := range shardedVariants() {
		t.Run(v.name, func(t *testing.T) {
			base, baseWin := runSharded(t, v, 1)
			if v.name == "plain" {
				tr := base.Topology("sharded-det")
				if tr.TuplesDelivered == 0 {
					t.Fatal("no tuples delivered; scenario is inert")
				}
				if tr.TuplesSentRemote == 0 {
					t.Fatal("no cross-node traffic; lanes never talk")
				}
			}
			again, againWin := runSharded(t, v, 1)
			if !reflect.DeepEqual(base, again) {
				t.Fatalf("shards=1 runs diverged:\nfirst:  %+v\nsecond: %+v", base, again)
			}
			if !reflect.DeepEqual(baseWin, againWin) {
				t.Fatalf("shards=1 observer streams diverged")
			}
			for _, shards := range shardCounts()[1:] {
				res, win := runSharded(t, v, shards)
				if !reflect.DeepEqual(base, res) {
					t.Errorf("shards=%d Result differs from shards=1:\nbase: %+v\ngot:  %+v",
						shards, base, res)
				}
				if !reflect.DeepEqual(baseWin, win) {
					t.Errorf("shards=%d observer stream differs from shards=1", shards)
				}
			}
		})
	}
}

// TestShardedReassignDeterminism drives the epoch path: pause mid-run,
// migrate tasks across racks (forcing pending events to rehome between
// lanes), resume, and compare Results across worker counts.
func TestShardedReassignDeterminism(t *testing.T) {
	run := func(shards int) *Result {
		topo := shardedTopo(t)
		c := shardedCluster(t)
		sim, err := New(c, Config{
			Duration:      6 * time.Second,
			MetricsWindow: time.Second,
			Seed:          11,
			TupleTimeout:  2 * time.Second,
			Shards:        shards,
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		a := spreadAssignment(topo, c)
		if err := sim.AddTopology(topo, a); err != nil {
			t.Fatalf("AddTopology: %v", err)
		}
		if err := sim.Start(); err != nil {
			t.Fatalf("Start: %v", err)
		}
		if err := sim.RunTo(3 * time.Second); err != nil {
			t.Fatalf("RunTo: %v", err)
		}
		// Swap every "mid" task one node forward — most hop racks.
		next := a.Clone()
		ids := c.NodeIDs()
		idx := make(map[cluster.NodeID]int, len(ids))
		for i, id := range ids {
			idx[id] = i
		}
		for _, task := range topo.TasksOf("mid") {
			p := next.Placements[task.ID]
			next.Placements[task.ID] = core.Placement{
				Node: ids[(idx[p.Node]+1)%len(ids)], Slot: p.Slot,
			}
		}
		moved, err := sim.Reassign("sharded-det", next)
		if err != nil {
			t.Fatalf("Reassign: %v", err)
		}
		if moved == 0 {
			t.Fatal("reassignment moved nothing; rehome path untested")
		}
		res, err := sim.Finish()
		if err != nil {
			t.Fatalf("Finish: %v", err)
		}
		return res
	}
	base := run(1)
	for _, shards := range shardCounts()[1:] {
		if res := run(shards); !reflect.DeepEqual(base, res) {
			t.Errorf("shards=%d post-reassign Result differs from shards=1", shards)
		}
	}
}

// TestShardedRejectsIncompatibleObservability: tracing and the decision
// journal assume one globally-ordered event loop and must be refused, as
// must a negative shard count.
func TestShardedRejectsIncompatibleObservability(t *testing.T) {
	c := shardedCluster(t)
	if _, err := New(c, Config{Shards: -1}); err == nil {
		t.Error("negative Shards accepted")
	}
	if _, err := New(c, Config{Shards: 2, TraceSampleEvery: 10}); err == nil {
		t.Error("Shards with TraceSampleEvery accepted")
	}
	sim, err := New(c, Config{Shards: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sim.SetJournal(trace.NewJournal(16)); err == nil {
		t.Error("SetJournal on sharded simulation accepted")
	}
	if err := sim.SetJournal(nil); err != nil {
		t.Errorf("detaching a nil journal rejected: %v", err)
	}
}

// TestShardedSingleRackCollapses: a one-rack cluster leaves no cross-lane
// cut, so the sharded kernel must collapse to one lane and still agree
// with itself at every worker count.
func TestShardedSingleRackCollapses(t *testing.T) {
	c, err := cluster.TwoRack(1, 6, cluster.EmulabNodeSpec())
	if err != nil {
		t.Fatalf("TwoRack: %v", err)
	}
	topo := shardedTopo(t)
	run := func(shards int) *Result {
		sim, err := New(c, Config{
			Duration:      3 * time.Second,
			MetricsWindow: time.Second,
			Seed:          3,
			Shards:        shards,
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if shards > 0 && len(sim.lanes) != 1 {
			t.Fatalf("single-rack cluster built %d lanes, want 1", len(sim.lanes))
		}
		if err := sim.AddTopology(topo, spreadAssignment(topo, c)); err != nil {
			t.Fatalf("AddTopology: %v", err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	base := run(1)
	for _, shards := range []int{2, 8} {
		if res := run(shards); !reflect.DeepEqual(base, res) {
			t.Errorf("shards=%d single-rack Result differs from shards=1", shards)
		}
	}
}
