package simulator

import (
	"testing"
	"time"

	"rstorm/internal/cluster"
	"rstorm/internal/core"
)

// edgeRecorder copies every flush's edge samples into cumulative
// per-(src,dst) totals — the observer-side view the conservation
// regression compares against the simulator's own delivery totals.
type edgeRecorder struct {
	perEdge map[[2]int]int64
	total   int64
	remote  int64
	flushes int
}

func (r *edgeRecorder) OnWindow(samples []TaskSample) {
	r.flushes++
	for i := range samples {
		s := &samples[i]
		for _, e := range s.Edges {
			if r.perEdge == nil {
				r.perEdge = make(map[[2]int]int64)
			}
			r.perEdge[[2]int{s.TaskID, e.DestTaskID}] += e.Tuples
			r.total += e.Tuples
			if e.Remote {
				r.remote += e.Tuples
			}
		}
	}
}

// TestReassignConservesEdgeCounters: a Reassign landing mid-window must
// rebuild the delivery wires without losing the traffic counted since the
// last flush or double-counting it afterward. The pre-move partial flush
// plus every later flush must sum to exactly the simulator's own delivery
// totals, with remote classification matching placement at the time the
// traffic flowed.
func TestReassignConservesEdgeCounters(t *testing.T) {
	topo := fig8aLikeTopo(t)
	c, err := cluster.Emulab12()
	if err != nil {
		t.Fatalf("Emulab12: %v", err)
	}
	state := core.NewGlobalState(c)
	a, err := core.NewResourceAwareScheduler().Schedule(topo, c, state)
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	sim, err := New(c, Config{
		Duration:      5 * time.Second,
		MetricsWindow: time.Second,
		Seed:          1,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sim.AddTopology(topo, a); err != nil {
		t.Fatalf("AddTopology: %v", err)
	}
	rec := &edgeRecorder{}
	if err := sim.SetObserver(rec); err != nil {
		t.Fatalf("SetObserver: %v", err)
	}
	if err := sim.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Pause mid-window (between the 2s and 3s flushes) and migrate two
	// tasks to nodes the schedule left empty.
	if err := sim.RunTo(2250 * time.Millisecond); err != nil {
		t.Fatalf("RunTo: %v", err)
	}
	ids := c.NodeIDs()
	next := core.NewAssignment(topo.Name(), "test-migration")
	for id, p := range a.Placements {
		next.Place(id, p)
	}
	tasks := topo.Tasks()
	next.Place(tasks[0].ID, core.Placement{Node: ids[len(ids)-1], Slot: 0})
	next.Place(tasks[len(tasks)-1].ID, core.Placement{Node: ids[len(ids)-2], Slot: 0})
	moved, err := sim.Reassign(topo.Name(), next)
	if err != nil {
		t.Fatalf("Reassign: %v", err)
	}
	if moved != 2 {
		t.Fatalf("moved %d tasks, want 2", moved)
	}
	res, err := sim.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}

	tr := res.Topology(topo.Name())
	if tr.TuplesSent == 0 {
		t.Fatal("nothing was sent; scenario is inert")
	}
	if rec.total != tr.TuplesSent {
		t.Errorf("observer saw %d edge tuples, simulator sent %d (lost or double-counted across Reassign)",
			rec.total, tr.TuplesSent)
	}
	if rec.remote != tr.TuplesSentRemote {
		t.Errorf("observer saw %d remote tuples, simulator sent %d remote (stale placement classification)",
			rec.remote, tr.TuplesSentRemote)
	}
	// The mid-window pause must have produced the extra partial flush
	// (5 scheduled boundaries + 1 pre-migration partial).
	if rec.flushes != 6 {
		t.Errorf("flushes = %d, want 6 (5 windows + 1 pre-migration partial)", rec.flushes)
	}
	// Per-edge sanity: every counted pair is a real topology edge with a
	// positive total.
	for pair, n := range rec.perEdge {
		if n < 0 {
			t.Errorf("edge %v went negative: %d", pair, n)
		}
	}
}

// TestEdgeCountersMatchDeliveries: on an undisturbed run, per-edge window
// counts must sum to the run's delivery totals (offered load, drops
// included) — the baseline the Reassign regression builds on.
func TestEdgeCountersMatchDeliveries(t *testing.T) {
	res1 := runSeeded(t, 7, false)
	topo := fig8aLikeTopo(t)
	c, err := cluster.Emulab12()
	if err != nil {
		t.Fatalf("Emulab12: %v", err)
	}
	state := core.NewGlobalState(c)
	a, err := core.NewResourceAwareScheduler().Schedule(topo, c, state)
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	sim, err := New(c, Config{
		Duration:      6 * time.Second,
		MetricsWindow: time.Second,
		Seed:          7,
		TupleTimeout:  2 * time.Second,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sim.AddTopology(topo, a); err != nil {
		t.Fatalf("AddTopology: %v", err)
	}
	rec := &edgeRecorder{}
	if err := sim.SetObserver(rec); err != nil {
		t.Fatalf("SetObserver: %v", err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	tr := res.Topology(topo.Name())
	if rec.total != tr.TuplesSent || rec.remote != tr.TuplesSentRemote {
		t.Errorf("observer totals (%d, %d remote) != simulator totals (%d, %d remote)",
			rec.total, rec.remote, tr.TuplesSent, tr.TuplesSentRemote)
	}
	// Attaching the edge tap must not perturb the simulation itself: the
	// same seed without an observer produces the same tuple accounting.
	other := res1.Topology(topo.Name())
	if other.TuplesSent != tr.TuplesSent || other.TuplesDelivered != tr.TuplesDelivered {
		t.Errorf("observer perturbed the run: %d/%d sent, %d/%d delivered",
			other.TuplesSent, tr.TuplesSent, other.TuplesDelivered, tr.TuplesDelivered)
	}
}
