package simulator

// waiter is a blocked producer holding a tuple that did not fit.
type waiter struct {
	tup      *tuple
	accepted func()
}

// boundedQueue is a FIFO with capacity and a waiter list. When the queue is
// full, producers park in the waiter list and are admitted (their accepted
// callback fired) as consumers drain — this is how backpressure propagates
// from an overloaded task back to the spouts.
type boundedQueue struct {
	capacity int
	items    []*tuple
	waiters  []waiter
}

func newBoundedQueue(capacity int) *boundedQueue {
	return &boundedQueue{capacity: capacity}
}

func (q *boundedQueue) len() int { return len(q.items) }

func (q *boundedQueue) empty() bool { return len(q.items) == 0 }

// tryEnqueue appends tup if there is space and reports whether it was
// admitted. When full, the producer must park via addWaiter.
func (q *boundedQueue) tryEnqueue(tup *tuple) bool {
	if len(q.items) >= q.capacity {
		return false
	}
	q.items = append(q.items, tup)
	return true
}

// addWaiter parks a blocked producer.
func (q *boundedQueue) addWaiter(tup *tuple, accepted func()) {
	q.waiters = append(q.waiters, waiter{tup: tup, accepted: accepted})
}

// dequeue pops the head. If producers are parked, the first one's tuple is
// admitted into the freed slot and its accepted callback is returned for
// the caller to schedule (the simulator defers callbacks through the event
// engine to keep control flow iterative).
func (q *boundedQueue) dequeue() (tup *tuple, unblocked func(), ok bool) {
	if len(q.items) == 0 {
		return nil, nil, false
	}
	tup = q.items[0]
	q.items[0] = nil
	q.items = q.items[1:]
	if len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters[0] = waiter{}
		q.waiters = q.waiters[1:]
		q.items = append(q.items, w.tup)
		unblocked = w.accepted
	}
	return tup, unblocked, true
}

// drain empties the queue and waiter list, returning all tuples (queued
// first) and the parked producers' callbacks. Used when a node fails.
func (q *boundedQueue) drain() (tuples []*tuple, unblocked []func()) {
	tuples = append(tuples, q.items...)
	q.items = nil
	for _, w := range q.waiters {
		tuples = append(tuples, w.tup)
		unblocked = append(unblocked, w.accepted)
	}
	q.waiters = nil
	return tuples, unblocked
}
