package simulator

// waiter is a blocked producer holding a tuple that did not fit.
type waiter struct {
	tup      *tuple
	accepted completion
}

// boundedQueue is a FIFO with capacity and a waiter list. When the queue is
// full, producers park in the waiter list and are admitted (their accepted
// completion fired) as consumers drain — this is how backpressure propagates
// from an overloaded task back to the spouts. Both lists are ring buffers,
// so steady-state enqueue/dequeue traffic does not allocate.
type boundedQueue struct {
	capacity int
	items    ring[*tuple]
	waiters  ring[waiter]
	// bytes is the payload resident in items — the queue's share of its
	// task's resident memory under the runtime memory model. Maintained
	// unconditionally (one integer add per enqueue/dequeue, so the hot
	// path stays branch-free and allocation-free either way).
	bytes int64
}

func newBoundedQueue(capacity int) *boundedQueue {
	return &boundedQueue{capacity: capacity}
}

func (q *boundedQueue) len() int { return q.items.len() }

// residentBytes is the payload currently held in the queue.
//
//rstorm:hotpath
func (q *boundedQueue) residentBytes() int64 { return q.bytes }

func (q *boundedQueue) empty() bool { return q.items.len() == 0 }

// tryEnqueue appends tup if there is space and reports whether it was
// admitted. When full, the producer must park via addWaiter.
//
//rstorm:hotpath
func (q *boundedQueue) tryEnqueue(tup *tuple) bool {
	if q.items.len() >= q.capacity {
		return false
	}
	q.items.push(tup)
	q.bytes += int64(tup.bytes)
	return true
}

// addWaiter parks a blocked producer.
//
//rstorm:hotpath
func (q *boundedQueue) addWaiter(tup *tuple, accepted completion) {
	q.waiters.push(waiter{tup: tup, accepted: accepted})
}

// dequeue pops the head. If producers are parked, the first one's tuple is
// admitted into the freed slot and its accepted completion is returned for
// the caller to schedule (the simulator defers completions through the
// event engine to keep control flow iterative). unblocked.kind is compNone
// when no producer was waiting.
//
//rstorm:hotpath
func (q *boundedQueue) dequeue() (tup *tuple, unblocked completion, ok bool) {
	if q.items.len() == 0 {
		return nil, completion{}, false
	}
	tup = q.items.pop()
	q.bytes -= int64(tup.bytes)
	if q.waiters.len() > 0 {
		w := q.waiters.pop()
		q.items.push(w.tup)
		q.bytes += int64(w.tup.bytes)
		unblocked = w.accepted
	}
	return tup, unblocked, true
}

// drain empties the queue and waiter list, returning all tuples (queued
// first) and the parked producers' completions. Used when a node fails.
func (q *boundedQueue) drain() (tuples []*tuple, unblocked []completion) {
	for q.items.len() > 0 {
		tuples = append(tuples, q.items.pop())
	}
	for q.waiters.len() > 0 {
		w := q.waiters.pop()
		tuples = append(tuples, w.tup)
		unblocked = append(unblocked, w.accepted)
	}
	q.bytes = 0
	return tuples, unblocked
}
