package simulator

import (
	"strings"
	"testing"
	"time"

	"rstorm/internal/cluster"
	"rstorm/internal/core"
	"rstorm/internal/topology"
)

// chainTopo builds spout -> work -> sink with the given profiles.
func chainTopo(t *testing.T, par int, spoutCost, boltCost time.Duration, bytes int, cpuLoad float64) *topology.Topology {
	t.Helper()
	b := topology.NewBuilder("chain")
	b.SetSpout("spout", par).
		SetCPULoad(cpuLoad).SetMemoryLoad(128).
		SetProfile(topology.ExecProfile{CPUPerTuple: spoutCost, TupleBytes: bytes})
	b.SetBolt("work", par).ShuffleGrouping("spout").
		SetCPULoad(cpuLoad).SetMemoryLoad(128).
		SetProfile(topology.ExecProfile{CPUPerTuple: boltCost, TupleBytes: bytes})
	b.SetBolt("sink", par).ShuffleGrouping("work").
		SetCPULoad(cpuLoad).SetMemoryLoad(128).
		SetProfile(topology.ExecProfile{CPUPerTuple: boltCost, TupleBytes: bytes})
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return topo
}

func emulabCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	c, err := cluster.Emulab12()
	if err != nil {
		t.Fatalf("Emulab12: %v", err)
	}
	return c
}

// runOnce schedules topo with sched and simulates it.
func runOnce(t *testing.T, topo *topology.Topology, c *cluster.Cluster, sched core.Scheduler, cfg Config) *Result {
	t.Helper()
	state := core.NewGlobalState(c)
	a, err := sched.Schedule(topo, c, state)
	if err != nil {
		t.Fatalf("%s schedule: %v", sched.Name(), err)
	}
	sim, err := New(c, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sim.AddTopology(topo, a); err != nil {
		t.Fatalf("AddTopology: %v", err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func shortCfg() Config {
	return Config{
		Duration:      10 * time.Second,
		MetricsWindow: time.Second,
		WarmupWindows: 2,
	}
}

func TestSimulationProducesThroughput(t *testing.T) {
	topo := chainTopo(t, 2, 200*time.Microsecond, 100*time.Microsecond, 256, 20)
	c := emulabCluster(t)
	res := runOnce(t, topo, c, core.NewResourceAwareScheduler(), shortCfg())

	tr := res.Topology("chain")
	if tr == nil {
		t.Fatal("missing topology result")
	}
	if tr.TuplesEmitted == 0 || tr.TuplesDelivered == 0 {
		t.Fatalf("no flow: emitted=%d delivered=%d", tr.TuplesEmitted, tr.TuplesDelivered)
	}
	if tr.MeanSinkThroughput <= 0 {
		t.Fatalf("mean throughput = %v", tr.MeanSinkThroughput)
	}
	if len(tr.SinkSeries) != 10 {
		t.Fatalf("series length = %d, want 10", len(tr.SinkSeries))
	}
	if tr.MeanLatency <= 0 {
		t.Fatalf("latency = %v", tr.MeanLatency)
	}
	if tr.Scheduler != "r-storm" {
		t.Errorf("scheduler = %q", tr.Scheduler)
	}
}

func TestConservationDeliveredNeverExceedsEmitted(t *testing.T) {
	// With OutRatio 1 everywhere and one sink stage, sink arrivals can
	// never exceed spout emissions.
	topo := chainTopo(t, 3, 150*time.Microsecond, 80*time.Microsecond, 256, 20)
	c := emulabCluster(t)
	res := runOnce(t, topo, c, core.NewResourceAwareScheduler(), shortCfg())
	tr := res.Topology("chain")
	if tr.TuplesDelivered > tr.TuplesEmitted {
		t.Fatalf("delivered %d > emitted %d", tr.TuplesDelivered, tr.TuplesEmitted)
	}
	// Emission is bounded by max-pending: emitted - delivered <= pending
	// window per spout task (3 tasks x 64) plus tuples still in queues.
	slack := tr.TuplesEmitted - tr.TuplesDelivered
	if slack > 3*64+3*128*2 {
		t.Fatalf("implausible in-flight slack %d", slack)
	}
}

func TestCPUOverloadSlowsThroughput(t *testing.T) {
	// Place the whole topology on one node twice: once within capacity,
	// once overcommitted 4x. The overloaded run must be slower.
	c := emulabCluster(t)
	node := c.NodeIDs()[0]
	makeAssign := func(topo *topology.Topology) *core.Assignment {
		a := core.NewAssignment(topo.Name(), "manual")
		for _, task := range topo.Tasks() {
			a.Place(task.ID, core.Placement{Node: node, Slot: 0})
		}
		return a
	}
	run := func(cpuLoad float64) float64 {
		topo := chainTopo(t, 1, 100*time.Microsecond, 100*time.Microsecond, 128, cpuLoad)
		sim, err := New(c, shortCfg())
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if err := sim.AddTopology(topo, makeAssign(topo)); err != nil {
			t.Fatalf("AddTopology: %v", err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res.Topology("chain").MeanSinkThroughput
	}
	fit := run(30)       // 3 tasks x 30 = 90 <= 100 points
	overload := run(130) // 3 x 130 = 390 => slowdown 3.9
	if overload >= fit*0.5 {
		t.Fatalf("overloaded throughput %v not clearly below fit %v", overload, fit)
	}
}

func TestNICBoundThroughputScalesWithTupleSize(t *testing.T) {
	// Two nodes, spout on one and sink bolt on the other: all traffic
	// crosses one 100 Mbps NIC. Tuples 4x larger => roughly 4x fewer
	// tuples per second.
	c, err := cluster.TwoRack(1, 2, cluster.EmulabNodeSpec())
	if err != nil {
		t.Fatalf("TwoRack: %v", err)
	}
	run := func(bytes int) float64 {
		b := topology.NewBuilder("wire")
		b.SetSpout("s", 1).SetCPULoad(5).SetMemoryLoad(64).
			SetProfile(topology.ExecProfile{CPUPerTuple: 5 * time.Microsecond, TupleBytes: bytes})
		b.SetBolt("d", 1).ShuffleGrouping("s").SetCPULoad(5).SetMemoryLoad(64).
			SetProfile(topology.ExecProfile{CPUPerTuple: 5 * time.Microsecond, TupleBytes: bytes})
		topo, err := b.Build()
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		a := core.NewAssignment("wire", "manual")
		a.Place(0, core.Placement{Node: c.NodeIDs()[0], Slot: 0})
		a.Place(1, core.Placement{Node: c.NodeIDs()[1], Slot: 0})
		cfg := shortCfg()
		cfg.MaxSpoutPending = 512 // don't let latency dominate
		sim, err := New(c, cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if err := sim.AddTopology(topo, a); err != nil {
			t.Fatalf("AddTopology: %v", err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res.Topology("wire").MeanSinkThroughput
	}
	small := run(1024)
	large := run(4096)
	ratio := small / large
	if ratio < 3 || ratio > 5 {
		t.Fatalf("4x tuple size => throughput ratio %.2f, want ~4 (small=%v large=%v)",
			ratio, small, large)
	}
}

func TestColocationBeatsRemotePlacement(t *testing.T) {
	// Same chain on one node vs spread across racks: colocated must win
	// under closed-loop pacing (latency bounds throughput).
	c := emulabCluster(t)
	topoOf := func(name string) *topology.Topology {
		b := topology.NewBuilder(name)
		b.SetSpout("s", 1).SetCPULoad(10).SetMemoryLoad(64).
			SetProfile(topology.ExecProfile{CPUPerTuple: 20 * time.Microsecond, TupleBytes: 512})
		b.SetBolt("m", 1).ShuffleGrouping("s").SetCPULoad(10).SetMemoryLoad(64).
			SetProfile(topology.ExecProfile{CPUPerTuple: 20 * time.Microsecond, TupleBytes: 512})
		b.SetBolt("z", 1).ShuffleGrouping("m").SetCPULoad(10).SetMemoryLoad(64).
			SetProfile(topology.ExecProfile{CPUPerTuple: 20 * time.Microsecond, TupleBytes: 512})
		topo, err := b.Build()
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		return topo
	}
	run := func(topo *topology.Topology, nodes []cluster.NodeID) float64 {
		a := core.NewAssignment(topo.Name(), "manual")
		for i, task := range topo.Tasks() {
			a.Place(task.ID, core.Placement{Node: nodes[i%len(nodes)], Slot: 0})
		}
		sim, err := New(c, shortCfg())
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if err := sim.AddTopology(topo, a); err != nil {
			t.Fatalf("AddTopology: %v", err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res.Topology(topo.Name()).MeanSinkThroughput
	}
	ids := c.NodeIDs()
	colocated := run(topoOf("colo"), []cluster.NodeID{ids[0]})
	spread := run(topoOf("spread"), []cluster.NodeID{ids[0], ids[6], ids[1]}) // cross-rack hops
	if colocated <= spread {
		t.Fatalf("colocated %v not better than cross-rack %v", colocated, spread)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	topo := chainTopo(t, 2, 100*time.Microsecond, 100*time.Microsecond, 256, 40)
	c := emulabCluster(t)
	res := runOnce(t, topo, c, core.NewResourceAwareScheduler(), shortCfg())
	if res.NodesUsed == 0 {
		t.Fatal("no nodes used")
	}
	for id, u := range res.NodeUtilization {
		if u < 0 || u > 1 {
			t.Errorf("node %s utilization %v out of range", id, u)
		}
	}
	if res.MeanUtilizationUsed <= 0 || res.MeanUtilizationUsed > 1 {
		t.Errorf("mean utilization = %v", res.MeanUtilizationUsed)
	}
}

func TestNodeFailureDropsTuplesButDoesNotWedge(t *testing.T) {
	// Bolts are slower than the spout, so input queues hold a backlog
	// when the node dies and those tuples are dropped.
	topo := chainTopo(t, 2, 100*time.Microsecond, 400*time.Microsecond, 256, 20)
	c := emulabCluster(t)
	state := core.NewGlobalState(c)
	a, err := core.NewResourceAwareScheduler().Schedule(topo, c, state)
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	sim, err := New(c, shortCfg())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sim.AddTopology(topo, a); err != nil {
		t.Fatalf("AddTopology: %v", err)
	}
	// Kill a node carrying bolt tasks halfway through.
	victim := a.NodesUsed()[len(a.NodesUsed())-1]
	if err := sim.FailNodeAt(victim, 5*time.Second); err != nil {
		t.Fatalf("FailNodeAt: %v", err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.TuplesDropped == 0 {
		t.Error("expected dropped tuples after node failure")
	}
	tr := res.Topology("chain")
	if tr.TuplesDelivered == 0 {
		t.Error("no tuples delivered before failure")
	}
}

func TestFailNodeValidation(t *testing.T) {
	c := emulabCluster(t)
	sim, err := New(c, shortCfg())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sim.FailNodeAt("ghost", time.Second); err == nil {
		t.Error("unknown node accepted")
	}
	if err := sim.FailNodeAt(c.NodeIDs()[0], -time.Second); err == nil {
		t.Error("negative failure time accepted")
	}
}

func TestSimulationDeterministic(t *testing.T) {
	topo := chainTopo(t, 2, 150*time.Microsecond, 100*time.Microsecond, 512, 20)
	c := emulabCluster(t)
	r1 := runOnce(t, topo, c, core.NewResourceAwareScheduler(), shortCfg())
	r2 := runOnce(t, topo, c, core.NewResourceAwareScheduler(), shortCfg())
	t1, t2 := r1.Topology("chain"), r2.Topology("chain")
	if t1.TuplesEmitted != t2.TuplesEmitted || t1.TuplesDelivered != t2.TuplesDelivered {
		t.Fatalf("non-deterministic: %d/%d vs %d/%d",
			t1.TuplesEmitted, t1.TuplesDelivered, t2.TuplesEmitted, t2.TuplesDelivered)
	}
	for i := range t1.SinkSeries {
		if t1.SinkSeries[i] != t2.SinkSeries[i] {
			t.Fatalf("series diverge at %d: %v vs %v", i, t1.SinkSeries, t2.SinkSeries)
		}
	}
}

func TestSimulationValidation(t *testing.T) {
	c := emulabCluster(t)
	topo := chainTopo(t, 1, time.Millisecond, time.Millisecond, 128, 10)

	if _, err := New(c, Config{Duration: -time.Second}); err == nil {
		t.Error("negative duration accepted")
	}
	if _, err := New(c, Config{Duration: time.Second, MetricsWindow: time.Minute}); err == nil {
		t.Error("window > duration accepted")
	}

	sim, err := New(c, shortCfg())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := sim.Run(); err == nil {
		t.Error("run with no topologies accepted")
	}

	sim2, _ := New(c, shortCfg())
	bad := core.NewAssignment("other", "x")
	if err := sim2.AddTopology(topo, bad); err == nil || !strings.Contains(err.Error(), "assignment is for") {
		t.Errorf("mismatched assignment err = %v", err)
	}
	incomplete := core.NewAssignment("chain", "x")
	if err := sim2.AddTopology(topo, incomplete); err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Errorf("incomplete assignment err = %v", err)
	}

	state := core.NewGlobalState(c)
	a, err := core.NewResourceAwareScheduler().Schedule(topo, c, state)
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	if err := sim2.AddTopology(topo, a); err != nil {
		t.Fatalf("AddTopology: %v", err)
	}
	if err := sim2.AddTopology(topo, a); err == nil {
		t.Error("duplicate topology accepted")
	}
	if _, err := sim2.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, err := sim2.Run(); err == nil {
		t.Error("second Run accepted")
	}
	if err := sim2.AddTopology(topo, a); err == nil {
		t.Error("AddTopology after Run accepted")
	}
	if err := sim2.FailNodeAt(c.NodeIDs()[0], time.Second); err == nil {
		t.Error("FailNodeAt after Run accepted")
	}
}

func TestGroupingsRouteCorrectly(t *testing.T) {
	// fields grouping: same key goes to same task; global: everything to
	// task 0. Verified via per-component processed counts.
	b := topology.NewBuilder("groups")
	b.SetSpout("s", 1).SetCPULoad(5).SetMemoryLoad(64).
		SetProfile(topology.ExecProfile{CPUPerTuple: 100 * time.Microsecond, TupleBytes: 64, KeyCardinality: 1})
	b.SetBolt("fields", 4).FieldsGrouping("s", "k").SetCPULoad(5).SetMemoryLoad(64).
		SetProfile(topology.ExecProfile{CPUPerTuple: 10 * time.Microsecond, TupleBytes: 64})
	b.SetBolt("global", 3).GlobalGrouping("fields").SetCPULoad(5).SetMemoryLoad(64).
		SetProfile(topology.ExecProfile{CPUPerTuple: 10 * time.Microsecond, TupleBytes: 64})
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	c := emulabCluster(t)
	state := core.NewGlobalState(c)
	a, err := core.NewResourceAwareScheduler().Schedule(topo, c, state)
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	sim, err := New(c, shortCfg())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sim.AddTopology(topo, a); err != nil {
		t.Fatalf("AddTopology: %v", err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	tr := res.Topology("groups")
	// With key cardinality 1, exactly one "fields" task ever processes;
	// totals still flow through to the global sink.
	if tr.TuplesDelivered == 0 {
		t.Fatal("nothing delivered")
	}
	// All delivered tuples went through the single global task: the
	// component series for "global" must equal the sink series.
	globalTotal := 0.0
	for _, v := range tr.ComponentSeries["global"] {
		globalTotal += v
	}
	if int64(globalTotal) != tr.TuplesDelivered {
		t.Errorf("global processed %v != delivered %d", globalTotal, tr.TuplesDelivered)
	}
}

func TestAllGroupingReplicates(t *testing.T) {
	b := topology.NewBuilder("fanout")
	b.SetSpout("s", 1).SetCPULoad(5).SetMemoryLoad(64).
		SetProfile(topology.ExecProfile{CPUPerTuple: 200 * time.Microsecond, TupleBytes: 64})
	b.SetBolt("all", 3).AllGrouping("s").SetCPULoad(5).SetMemoryLoad(64).
		SetProfile(topology.ExecProfile{CPUPerTuple: 10 * time.Microsecond, TupleBytes: 64})
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	c := emulabCluster(t)
	state := core.NewGlobalState(c)
	a, err := core.NewResourceAwareScheduler().Schedule(topo, c, state)
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	sim, err := New(c, shortCfg())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sim.AddTopology(topo, a); err != nil {
		t.Fatalf("AddTopology: %v", err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	tr := res.Topology("fanout")
	// Every emitted tuple is replicated to all 3 sink tasks.
	low, high := 2.5, 3.5
	ratio := float64(tr.TuplesDelivered) / float64(tr.TuplesEmitted)
	if ratio < low || ratio > high {
		t.Fatalf("all-grouping delivery ratio %.2f, want ~3 (emitted=%d delivered=%d)",
			ratio, tr.TuplesEmitted, tr.TuplesDelivered)
	}
}

func TestOutRatioFilters(t *testing.T) {
	b := topology.NewBuilder("filter")
	b.SetSpout("s", 1).SetCPULoad(5).SetMemoryLoad(64).
		SetProfile(topology.ExecProfile{CPUPerTuple: 100 * time.Microsecond, TupleBytes: 64})
	b.SetBolt("half", 1).ShuffleGrouping("s").SetCPULoad(5).SetMemoryLoad(64).
		SetProfile(topology.ExecProfile{CPUPerTuple: 10 * time.Microsecond, TupleBytes: 64, OutRatio: 0.5})
	b.SetBolt("sink", 1).ShuffleGrouping("half").SetCPULoad(5).SetMemoryLoad(64).
		SetProfile(topology.ExecProfile{CPUPerTuple: 10 * time.Microsecond, TupleBytes: 64})
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	c := emulabCluster(t)
	state := core.NewGlobalState(c)
	a, err := core.NewResourceAwareScheduler().Schedule(topo, c, state)
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	sim, err := New(c, shortCfg())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sim.AddTopology(topo, a); err != nil {
		t.Fatalf("AddTopology: %v", err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	tr := res.Topology("filter")
	ratio := float64(tr.TuplesDelivered) / float64(tr.TuplesEmitted)
	if ratio < 0.4 || ratio > 0.6 {
		t.Fatalf("filter ratio %.2f, want ~0.5", ratio)
	}
}

func TestResultString(t *testing.T) {
	topo := chainTopo(t, 1, 500*time.Microsecond, 100*time.Microsecond, 128, 10)
	c := emulabCluster(t)
	res := runOnce(t, topo, c, core.NewResourceAwareScheduler(), shortCfg())
	if s := res.String(); !strings.Contains(s, "chain") {
		t.Errorf("String = %q", s)
	}
	if res.Topology("nope") != nil {
		t.Error("unknown topology should be nil")
	}
	if res.TotalMeanThroughput() <= 0 {
		t.Error("TotalMeanThroughput <= 0")
	}
}
