package simulator

import (
	"reflect"
	"testing"
	"time"

	"rstorm/internal/cluster"
	"rstorm/internal/core"
	"rstorm/internal/topology"
)

// fig8aLikeTopo is the Fig. 8a linear network-bound chain used by the
// determinism regression: spout -> bolt -> sink with heavy tuples.
func fig8aLikeTopo(t *testing.T) *topology.Topology {
	t.Helper()
	b := topology.NewBuilder("fig8a-det")
	b.SetSpout("spout", 4).SetCPULoad(20).SetMemoryLoad(512).
		SetProfile(topology.ExecProfile{CPUPerTuple: 50 * time.Microsecond, TupleBytes: 4096, KeyCardinality: 64})
	// Fields grouping makes the seeded key stream observable in the
	// Result (per-task load follows the keys), unlike pure round-robin.
	b.SetBolt("mid", 4).FieldsGrouping("spout", "key").SetCPULoad(20).SetMemoryLoad(512).
		SetProfile(topology.ExecProfile{CPUPerTuple: 50 * time.Microsecond, TupleBytes: 4096})
	b.SetBolt("sink", 4).ShuffleGrouping("mid").SetCPULoad(20).SetMemoryLoad(512).
		SetProfile(topology.ExecProfile{CPUPerTuple: 50 * time.Microsecond, TupleBytes: 64})
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return topo
}

// runSeeded schedules and runs the topology with a fixed seed.
func runSeeded(t *testing.T, seed int64, failNode bool) *Result {
	t.Helper()
	topo := fig8aLikeTopo(t)
	c, err := cluster.Emulab12()
	if err != nil {
		t.Fatalf("Emulab12: %v", err)
	}
	state := core.NewGlobalState(c)
	a, err := core.NewResourceAwareScheduler().Schedule(topo, c, state)
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	sim, err := New(c, Config{
		Duration:      6 * time.Second,
		MetricsWindow: time.Second,
		Seed:          seed,
		TupleTimeout:  2 * time.Second,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sim.AddTopology(topo, a); err != nil {
		t.Fatalf("AddTopology: %v", err)
	}
	if failNode {
		ids := c.NodeIDs()
		if err := sim.FailNodeAt(ids[len(ids)-1], 3*time.Second); err != nil {
			t.Fatalf("FailNodeAt: %v", err)
		}
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// TestSeededRunsAreIdentical is the DES determinism regression: the same
// seed must produce identical Result structs run-to-run — the free lists,
// the typed event records, and the 4-ary heap must not introduce any
// ordering or accounting drift.
func TestSeededRunsAreIdentical(t *testing.T) {
	for _, tc := range []struct {
		name     string
		seed     int64
		failNode bool
	}{
		{name: "seed1", seed: 1},
		{name: "seed99", seed: 99},
		{name: "seed1-with-failure", seed: 1, failNode: true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			first := runSeeded(t, tc.seed, tc.failNode)
			second := runSeeded(t, tc.seed, tc.failNode)
			if !reflect.DeepEqual(first, second) {
				t.Errorf("seeded runs diverged:\nfirst:  %+v\nsecond: %+v", first, second)
			}
		})
	}
}

// TestDifferentSeedsDiverge guards the other direction: the seed must
// actually influence the run (a constant RNG would also pass the test
// above).
func TestDifferentSeedsDiverge(t *testing.T) {
	a := runSeeded(t, 1, false)
	b := runSeeded(t, 2, false)
	if reflect.DeepEqual(a, b) {
		t.Error("different seeds produced identical Results; RNG is not wired through")
	}
}
