package simulator

import (
	"time"

	"rstorm/internal/des"
	"rstorm/internal/pardes"
)

// A simLane is one independently advancing event loop over a fixed subset
// of the cluster's nodes (DESIGN.md §11). The sharded kernel runs one lane
// per rack: the rack uplink latency is the minimum time any tuple needs to
// cross between racks, which is exactly the conservative lookahead bound
// the windowed loop (sharded.go) advances under. The legacy kernel is the
// degenerate case — a single lane holding every node, driven inclusively
// by RunUntil instead of windows.
//
// Everything a lane mutates on the hot path lives on the lane (event,
// tuple and tree free lists, drop/replay counters) or on objects the lane
// owns (its nodes, their tasks, their links), so lanes running on separate
// worker goroutines never contend. The only cross-lane channel is the
// outbox ring: messages pushed during a window are timestamped at least a
// lookahead in the future and drained into the destination lane's engine
// at the next merge barrier, in fixed (destination, source) lane order, so
// the merged event streams are identical for every worker count.
type simLane struct {
	sim   *Simulation
	idx   int
	eng   *des.Engine
	nodes []*simNode // the lane's nodes, in cluster declaration order

	// out[i] is the outbox ring toward lane i. Single-producer during a
	// window (only this lane pushes), single-consumer at the barrier (only
	// the coordinator pops); the barrier itself is the fence.
	out []pardes.Ring[laneMsg]

	// Per-lane slices of the simulation-wide counters, summed at
	// buildResult. Integer sums commute, so splitting them per lane leaves
	// the legacy single-lane totals bit-identical.
	dropped   int64
	migrated  int64
	oomKilled int64
	replayed  int64
	lostTrees int64

	// faultBuf collects fault records applied by this lane during sharded
	// windows; merged into Simulation.faultLog by (time, lane) at barriers.
	// Legacy mode appends to the shared log directly.
	faultBuf []FaultRecord

	// Free lists (see events.go). LIFO stacks touched only by this lane.
	// Tuples freed on a lane other than their birth lane simply join the
	// local list: recycling never affects simulation behaviour.
	eventPool []*simEvent
	tuplePool []*tuple
	treePool  []*tree
}

func newLane(s *Simulation, idx int) *simLane {
	return &simLane{sim: s, idx: idx, eng: des.NewEngine()}
}

// Cross-lane message kinds.
const (
	msgArrive   uint8 = iota // tuple arrival at a task on another lane
	msgComplete              // acceptance completion homed on another lane
	msgAck                   // tuple-tree delta for a tree homed on another lane
)

// laneMsg is one cross-lane hand-off, stored by value in the outbox ring.
// at is the virtual time the message takes effect in the destination lane;
// the conservative contract guarantees at is never inside the window that
// produced it.
type laneMsg struct {
	at   time.Duration
	kind uint8
	dest *simTask   // msgArrive
	tup  *tuple     // msgArrive
	comp completion // msgArrive (acceptance), msgComplete
	tree *tree      // msgAck
	// delta/failed are the ack payload: instances added by a fan-out or
	// removed by a completion/failure, and whether a descendant failed.
	delta  int32
	failed bool
}

// compHome returns the lane a completion must fire on: the emitting task's
// for delivery-advance completions, the link's for window-slot releases.
//
//rstorm:hotpath
func (ln *simLane) compHome(comp completion) *simLane {
	switch comp.kind {
	case compDeliver:
		return comp.task.node.lane
	case compRelease:
		return comp.link.lane
	}
	return ln
}

// ackTree applies a tuple-tree delta — instances added by a fan-out, or
// one removed by a completion or failure — on the tree's home lane (its
// spout's). Same-lane deltas apply inline, which is exactly the
// pre-sharding arithmetic, so the legacy single-lane kernel is unchanged.
// Cross-lane deltas ride the outbox and land a lookahead later, modeling
// the ack message's own network hop; the home lane is the only writer of
// pending/failed, so tree state needs no locks. The delayed delta cannot
// complete a tree early: a descendant's removal is always observed after
// the fan-out that created it, because the child tuple itself crossed the
// same racks with at least the same latency plus a positive service time.
//
//rstorm:hotpath
func (ln *simLane) ackTree(tr *tree, delta int, failed bool) {
	sp := tr.spout
	if sp == nil || sp.node.lane == ln {
		ln.applyAck(tr, delta, failed)
		return
	}
	home := sp.node.lane
	ln.out[home.idx].Push(laneMsg{
		at:     ln.eng.Now() + ln.sim.lookahead,
		kind:   msgAck,
		tree:   tr,
		delta:  int32(delta),
		failed: failed,
	})
}

// applyAck is the home-lane half of ackTree.
//
//rstorm:hotpath
func (ln *simLane) applyAck(tr *tree, delta int, failed bool) {
	if failed {
		tr.failed = true
	}
	tr.pending += delta
	if tr.pending == 0 {
		ln.completeTree(tr)
	}
}

// drainInboxes moves every queued cross-lane message into its destination
// engine. Runs only at merge barriers (between Coordinator.Advance calls)
// and between epochs, single-threaded. Destination lanes are drained in
// index order, and each destination drains its sources in index order with
// ring FIFO preserved, so equal-timestamp messages receive engine sequence
// numbers in a fixed total order — independent of the worker count.
func (s *Simulation) drainInboxes() {
	for _, dst := range s.lanes {
		for _, src := range s.lanes {
			r := &src.out[dst.idx]
			for r.Len() > 0 {
				m := r.Pop()
				switch m.kind {
				case msgArrive:
					ev := dst.newEvent(evArrive)
					ev.dest = m.dest
					ev.tup = m.tup
					ev.comp = m.comp
					dst.eng.ScheduleEventAt(m.at, ev)
				case msgComplete:
					ev := dst.newEvent(evComplete)
					ev.comp = m.comp
					dst.eng.ScheduleEventAt(m.at, ev)
				case msgAck:
					ev := dst.newEvent(evTreeAck)
					ev.tree = m.tree
					ev.delta = m.delta
					ev.failed = m.failed
					dst.eng.ScheduleEventAt(m.at, ev)
				}
			}
		}
	}
}

// mergeLaneFaults folds the lanes' fault buffers into the shared log in
// virtual-time order (ties resolve by lane index). Each lane's buffer is
// already time-ordered (records append as faults fire), so a k-way merge
// keeps the whole log ordered across epochs.
func (s *Simulation) mergeLaneFaults() {
	for {
		best := -1
		for i, ln := range s.lanes {
			if len(ln.faultBuf) == 0 {
				continue
			}
			if best == -1 || ln.faultBuf[0].At < s.lanes[best].faultBuf[0].At {
				best = i
			}
		}
		if best == -1 {
			return
		}
		ln := s.lanes[best]
		s.faultLog = append(s.faultLog, ln.faultBuf[0])
		ln.faultBuf = ln.faultBuf[:copy(ln.faultBuf, ln.faultBuf[1:])]
	}
}

// rehomeEvents redistributes every pending event after task placements
// changed (Reassign, ReassignRestarting, revive): an event homed by its
// task — bolt wakeups, arrivals, spout cycles — must fire on the lane that
// now owns the task, or two lanes would mutate it concurrently. Called
// only between epochs with the inboxes drained, so the engines hold the
// complete pending set. Events are collected from every lane first (in
// lane index order, each lane's in (time, sequence) order), then
// rescheduled at their original timestamps in collection order: fresh
// sequence numbers preserve relative order within a lane, and the
// collection order breaks cross-lane ties deterministically.
func (s *Simulation) rehomeEvents() {
	type lanePending struct {
		src *simLane
		evs []des.PendingEvent
	}
	all := make([]lanePending, len(s.lanes))
	for i, ln := range s.lanes {
		all[i] = lanePending{src: ln, evs: ln.eng.TakePending()}
	}
	for _, lp := range all {
		for _, pe := range lp.evs {
			home := s.eventHome(pe, lp.src)
			if pe.Ev != nil {
				if se, ok := pe.Ev.(*simEvent); ok {
					se.ln = home
				}
				home.eng.ScheduleEventAt(pe.At, pe.Ev)
			} else {
				home.eng.ScheduleAt(pe.At, pe.Fn)
			}
		}
	}
}

// eventHome resolves the lane a pending event must fire on after a
// placement change. Closure events (fault injections) and per-lane ticks
// stay where they were: their subject — a node, a lane's node subset —
// never moves between lanes.
func (s *Simulation) eventHome(pe des.PendingEvent, src *simLane) *simLane {
	se, ok := pe.Ev.(*simEvent)
	if !ok {
		return src
	}
	switch se.kind {
	case evSpoutCycle, evSpoutFire, evBoltTry, evBoltFire, evSpoutReplay:
		return se.task.node.lane
	case evArrive:
		return se.dest.node.lane
	case evLinkDone:
		return se.link.lane
	case evComplete:
		return src.compHome(se.comp)
	case evTreeAck:
		if sp := se.tree.spout; sp != nil {
			return sp.node.lane
		}
		return src
	default: // evWindowFlush (legacy only), evOOMCheck
		return src
	}
}

// taskSeed derives a per-task splitmix64 stream state from the run seed,
// the topology name, and the task ID. The derivation depends only on
// stable identifiers — never on placement, rack, or shard count — so a
// sharded run's key streams survive Reassign and are identical for every
// Shards value.
func taskSeed(seed int64, topo string, id int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(topo); i++ {
		h ^= uint64(topo[i])
		h *= prime64
	}
	h ^= uint64(seed)
	h *= prime64
	h ^= uint64(id)
	h *= prime64
	return h
}

// nextKey draws the task's next spout key from its private splitmix64
// stream — the sharded kernel's replacement for the simulation-wide
// *rand.Rand, whose draw order would depend on lane interleaving.
//
//rstorm:hotpath
func (t *simTask) nextKey() uint64 {
	t.rngState += 0x9e3779b97f4a7c15
	z := t.rngState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
