package simulator

import (
	"testing"
	"time"

	"rstorm/internal/cluster"
	"rstorm/internal/core"
	"rstorm/internal/topology"
)

// pairTopo builds a spout -> bolt pair with one task each.
func pairTopo(t *testing.T, name string, cpu float64) *topology.Topology {
	t.Helper()
	prof := topology.ExecProfile{CPUPerTuple: 500 * time.Microsecond, TupleBytes: 128}
	b := topology.NewBuilder(name)
	b.SetSpout("s", 1).SetCPULoad(cpu).SetMemoryLoad(256).SetProfile(prof)
	b.SetBolt("z", 1).ShuffleGrouping("s").SetCPULoad(cpu).SetMemoryLoad(256).SetProfile(prof)
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return topo
}

func pairAssignment(topo *topology.Topology, spoutNode, boltNode cluster.NodeID) *core.Assignment {
	a := core.NewAssignment(topo.Name(), "manual")
	a.Place(0, core.Placement{Node: spoutNode, Slot: 0})
	a.Place(1, core.Placement{Node: boltNode, Slot: 1})
	return a
}

// windowCount sums a series over window indexes [from, to).
func seriesSum(series []float64, from, to int) float64 {
	var sum float64
	for i := from; i < to && i < len(series); i++ {
		sum += series[i]
	}
	return sum
}

func TestSubmitTopologyMidRunStartsFlow(t *testing.T) {
	c := emulabCluster(t)
	ids := c.NodeIDs()
	sim, err := New(c, shortCfg())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	first := pairTopo(t, "first", 40)
	if err := sim.AddTopology(first, pairAssignment(first, ids[0], ids[1])); err != nil {
		t.Fatal(err)
	}
	if err := sim.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunTo(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	late := pairTopo(t, "late", 40)
	if err := sim.SubmitTopology(late, pairAssignment(late, ids[2], ids[3])); err != nil {
		t.Fatalf("SubmitTopology: %v", err)
	}
	res, err := sim.Finish()
	if err != nil {
		t.Fatal(err)
	}
	lr := res.Topology("late")
	if lr == nil || lr.TuplesDelivered == 0 {
		t.Fatalf("late topology produced nothing: %+v", lr)
	}
	// Nothing before admission, flow after.
	if pre := seriesSum(lr.SinkSeries, 0, 5); pre != 0 {
		t.Errorf("late topology delivered %v tuples before admission", pre)
	}
	if post := seriesSum(lr.SinkSeries, 5, 10); post <= 0 {
		t.Errorf("late topology delivered nothing after admission: %v", lr.SinkSeries)
	}
	// The first topology ran the whole time.
	if fr := res.Topology("first"); fr.TuplesDelivered == 0 {
		t.Error("first topology produced nothing")
	}
}

func TestSubmitTopologyContendsWithResidents(t *testing.T) {
	c := emulabCluster(t)
	ids := c.NodeIDs()
	run := func(stack bool) float64 {
		sim, err := New(c, shortCfg())
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		resident := pairTopo(t, "resident", 80)
		if err := sim.AddTopology(resident, pairAssignment(resident, ids[0], ids[1])); err != nil {
			t.Fatal(err)
		}
		if err := sim.Start(); err != nil {
			t.Fatal(err)
		}
		if err := sim.RunTo(2 * time.Second); err != nil {
			t.Fatal(err)
		}
		late := pairTopo(t, "late", 80)
		target := pairAssignment(late, ids[2], ids[3])
		if stack {
			target = pairAssignment(late, ids[0], ids[1]) // 160 points per node
		}
		if err := sim.SubmitTopology(late, target); err != nil {
			t.Fatal(err)
		}
		res, err := sim.Finish()
		if err != nil {
			t.Fatal(err)
		}
		// Resident throughput after the admission epoch.
		return seriesSum(res.Topology("resident").SinkSeries, 2, 10)
	}
	apart := run(false)
	stacked := run(true)
	if apart <= 0 {
		t.Fatal("resident idle when apart")
	}
	// Stacking 160 true points on 100-point nodes must slow the resident:
	// mid-run admission refreezes contention on the shared nodes.
	if stacked > 0.75*apart {
		t.Errorf("mid-run admission did not contend: stacked %v vs apart %v", stacked, apart)
	}
}

func TestKillTopologyStopsFlowAndFreesContention(t *testing.T) {
	c := emulabCluster(t)
	ids := c.NodeIDs()
	sim, err := New(c, shortCfg())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Two tenants stacked on the same nodes, 160 points per 100-point node.
	one := pairTopo(t, "one", 80)
	two := pairTopo(t, "two", 80)
	if err := sim.AddTopology(one, pairAssignment(one, ids[0], ids[1])); err != nil {
		t.Fatal(err)
	}
	if err := sim.AddTopology(two, pairAssignment(two, ids[0], ids[1])); err != nil {
		t.Fatal(err)
	}
	if err := sim.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunTo(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := sim.KillTopology("two"); err != nil {
		t.Fatalf("KillTopology: %v", err)
	}
	if err := sim.KillTopology("two"); err == nil {
		t.Error("double kill accepted")
	}
	if err := sim.KillTopology("ghost"); err == nil {
		t.Error("kill of unknown topology accepted")
	}
	res, err := sim.Finish()
	if err != nil {
		t.Fatal(err)
	}
	two2 := res.Topology("two")
	if post := seriesSum(two2.SinkSeries, 6, 10); post != 0 {
		t.Errorf("killed topology still delivering: %v", two2.SinkSeries)
	}
	oneR := res.Topology("one")
	before := seriesSum(oneR.SinkSeries, 2, 5) / 3
	after := seriesSum(oneR.SinkSeries, 6, 10) / 4
	// The survivor's contention stretch (1.6x) departs with the victim.
	if after <= before*1.3 {
		t.Errorf("survivor did not speed up after kill: before %v/s after %v/s", before, after)
	}
}

// TestKillTopologyReleasesSpoutCredits drives a kill while tuples are
// queued and in flight, then checks the surviving topology and the global
// accounting: drained tuples count as migrated, and the dead tenant's
// spout is not wedged (its trees all complete — no leaked max-pending
// credits would be observable as a hang if the topology were revived).
func TestKillTopologyReleasesSpoutCreditsAndRevives(t *testing.T) {
	c := emulabCluster(t)
	ids := c.NodeIDs()
	sim, err := New(c, shortCfg())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// A bolt slower than its spout keeps a backlog queued, so the kill has
	// something to drain.
	b := topology.NewBuilder("phoenix")
	b.SetSpout("s", 1).SetCPULoad(40).SetMemoryLoad(256).
		SetProfile(topology.ExecProfile{CPUPerTuple: 200 * time.Microsecond, TupleBytes: 128})
	b.SetBolt("z", 1).ShuffleGrouping("s").SetCPULoad(40).SetMemoryLoad(256).
		SetProfile(topology.ExecProfile{CPUPerTuple: 2 * time.Millisecond, TupleBytes: 128})
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := sim.AddTopology(topo, pairAssignment(topo, ids[0], ids[1])); err != nil {
		t.Fatal(err)
	}
	if err := sim.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunTo(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := sim.KillTopology("phoenix"); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunTo(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Revive on different nodes.
	if err := sim.SubmitTopology(topo, pairAssignment(topo, ids[4], ids[5])); err != nil {
		t.Fatalf("revive: %v", err)
	}
	res, err := sim.Finish()
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Topology("phoenix")
	if mid := seriesSum(tr.SinkSeries, 4, 6); mid != 0 {
		t.Errorf("dead interval delivered %v tuples", mid)
	}
	post := seriesSum(tr.SinkSeries, 7, 10)
	if post <= 0 {
		t.Errorf("revived topology delivers nothing (wedged spout?): %v", tr.SinkSeries)
	}
	// The revived rate should match the pre-kill rate: same profile,
	// uncontended nodes both times.
	pre := seriesSum(tr.SinkSeries, 1, 3) / 2
	if post/3 < pre*0.9 {
		t.Errorf("revived rate %v/s below pre-kill rate %v/s", post/3, pre)
	}
	if res.TuplesMigrated == 0 {
		t.Error("kill drained nothing through the migration path")
	}
	// Revived on new nodes: the result sees all four hosts used.
	if got := len(tr.SinkSeries); got != 10 {
		t.Fatalf("series length %d", got)
	}
}

func TestSubmitValidationMidRun(t *testing.T) {
	c := emulabCluster(t)
	ids := c.NodeIDs()
	sim, err := New(c, shortCfg())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	topo := pairTopo(t, "base", 40)
	if err := sim.SubmitTopology(topo, pairAssignment(topo, ids[0], ids[1])); err == nil {
		t.Error("mid-run submit accepted before Start")
	}
	if err := sim.AddTopology(topo, pairAssignment(topo, ids[0], ids[1])); err != nil {
		t.Fatal(err)
	}
	if err := sim.Start(); err != nil {
		t.Fatal(err)
	}
	// Live name: revival path must refuse.
	dup := pairTopo(t, "base", 40)
	if err := sim.SubmitTopology(dup, pairAssignment(dup, ids[2], ids[3])); err == nil {
		t.Error("submit of a live name accepted")
	}
	// Incomplete assignment refused.
	other := pairTopo(t, "other", 40)
	bad := core.NewAssignment("other", "manual")
	bad.Place(0, core.Placement{Node: ids[0], Slot: 0})
	if err := sim.SubmitTopology(other, bad); err == nil {
		t.Error("incomplete assignment accepted")
	}
}

// TestTenancyDeterministic runs the same submit/kill/revive scenario twice
// and requires identical results — the multitenant experiment's
// determinism rests on this.
func TestTenancyDeterministic(t *testing.T) {
	c := emulabCluster(t)
	ids := c.NodeIDs()
	run := func() *Result {
		sim, err := New(c, shortCfg())
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		a := pairTopo(t, "a", 60)
		bT := pairTopo(t, "b", 60)
		if err := sim.AddTopology(a, pairAssignment(a, ids[0], ids[1])); err != nil {
			t.Fatal(err)
		}
		if err := sim.AddTopology(bT, pairAssignment(bT, ids[0], ids[1])); err != nil {
			t.Fatal(err)
		}
		if err := sim.Start(); err != nil {
			t.Fatal(err)
		}
		if err := sim.RunTo(3 * time.Second); err != nil {
			t.Fatal(err)
		}
		if err := sim.KillTopology("b"); err != nil {
			t.Fatal(err)
		}
		late := pairTopo(t, "late", 60)
		if err := sim.SubmitTopology(late, pairAssignment(late, ids[2], ids[3])); err != nil {
			t.Fatal(err)
		}
		if err := sim.RunTo(6 * time.Second); err != nil {
			t.Fatal(err)
		}
		if err := sim.SubmitTopology(bT, pairAssignment(bT, ids[4], ids[5])); err != nil {
			t.Fatal(err)
		}
		res, err := sim.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(), run()
	for _, name := range []string{"a", "b", "late"} {
		t1, t2 := r1.Topology(name), r2.Topology(name)
		if t1.TuplesEmitted != t2.TuplesEmitted || t1.TuplesDelivered != t2.TuplesDelivered {
			t.Errorf("%s diverged: %d/%d vs %d/%d tuples",
				name, t1.TuplesEmitted, t1.TuplesDelivered, t2.TuplesEmitted, t2.TuplesDelivered)
		}
		for i := range t1.SinkSeries {
			if t1.SinkSeries[i] != t2.SinkSeries[i] {
				t.Errorf("%s series diverged at window %d: %v vs %v",
					name, i, t1.SinkSeries[i], t2.SinkSeries[i])
			}
		}
	}
	if r1.TuplesMigrated != r2.TuplesMigrated || r1.TuplesDropped != r2.TuplesDropped {
		t.Errorf("drain counters diverged: %d/%d vs %d/%d",
			r1.TuplesMigrated, r1.TuplesDropped, r2.TuplesMigrated, r2.TuplesDropped)
	}
}
