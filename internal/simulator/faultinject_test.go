package simulator

import (
	"testing"
	"time"

	"rstorm/internal/cluster"
	"rstorm/internal/core"
	"rstorm/internal/faults"
)

// startChain schedules chainTopo on the emulab cluster and starts a
// simulation, returning it with its assignment.
func startChain(t *testing.T, cfg Config) (*Simulation, *core.Assignment, *cluster.Cluster) {
	t.Helper()
	topo := chainTopo(t, 2, 100*time.Microsecond, 200*time.Microsecond, 256, 20)
	c := emulabCluster(t)
	state := core.NewGlobalState(c)
	a, err := core.NewResourceAwareScheduler().Schedule(topo, c, state)
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	sim, err := New(c, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sim.AddTopology(topo, a); err != nil {
		t.Fatalf("AddTopology: %v", err)
	}
	if err := sim.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return sim, a, c
}

func TestInjectFaultMidRun(t *testing.T) {
	sim, a, _ := startChain(t, shortCfg())
	victim := a.NodesUsed()[len(a.NodesUsed())-1]
	if err := sim.RunTo(2 * time.Second); err != nil {
		t.Fatalf("RunTo: %v", err)
	}
	// Mid-run injection was rejected outright before; now it schedules on
	// the live event queue.
	if err := sim.InjectFault(faults.Fault{Kind: faults.Crash, Node: victim, At: 3 * time.Second}); err != nil {
		t.Fatalf("mid-run InjectFault: %v", err)
	}
	// ... but not into the past.
	if err := sim.InjectFault(faults.Fault{Kind: faults.Crash, Node: victim, At: time.Second}); err == nil {
		t.Error("past-time injection accepted")
	}
	res, err := sim.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if res.TuplesDropped == 0 {
		t.Error("expected drops after mid-run crash")
	}
	if len(res.Faults) != 1 || res.Faults[0].Kind != faults.Crash || res.Faults[0].At != 3*time.Second {
		t.Errorf("fault log = %v, want one crash at 3s", res.Faults)
	}
	if down := res.NodeDowntime[victim]; down != 7*time.Second {
		t.Errorf("downtime = %v, want 7s (crash at 3s, 10s run)", down)
	}
}

func TestRecoverReturnsCapacityAndDowntime(t *testing.T) {
	sim, a, _ := startChain(t, shortCfg())
	victim := a.NodesUsed()[len(a.NodesUsed())-1]
	sched := faults.Schedule{
		{Kind: faults.Crash, Node: victim, At: 2 * time.Second},
		{Kind: faults.Recover, Node: victim, At: 5 * time.Second},
	}
	if err := sched.Apply(sim); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if err := sim.RunTo(6 * time.Second); err != nil {
		t.Fatalf("RunTo: %v", err)
	}
	if dead := sim.DeadNodes(); len(dead) != 0 {
		t.Errorf("node still dead after recovery: %v", dead)
	}
	res, err := sim.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if down := res.NodeDowntime[victim]; down != 3*time.Second {
		t.Errorf("downtime = %v, want 3s", down)
	}
	if len(res.Faults) != 2 {
		t.Errorf("fault log = %v, want crash+recover", res.Faults)
	}
}

func TestSlowFaultDegradesAndRecoverRestores(t *testing.T) {
	// Same seed, three runs: healthy, slowed, slowed-then-recovered.
	run := func(sched faults.Schedule) *Result {
		sim, a, _ := startChain(t, shortCfg())
		// Slow the node hosting tasks (first used node).
		_ = a
		for i := range sched {
			sched[i].Node = a.NodesUsed()[0]
		}
		if err := sched.Apply(sim); err != nil {
			t.Fatalf("Apply: %v", err)
		}
		res, err := sim.Finish()
		if err != nil {
			t.Fatalf("Finish: %v", err)
		}
		return res
	}
	healthy := run(nil)
	slowed := run(faults.Schedule{{Kind: faults.Slow, At: time.Second, Factor: 8}})
	restored := run(faults.Schedule{
		{Kind: faults.Slow, At: time.Second, Factor: 8},
		{Kind: faults.Recover, At: 3 * time.Second},
	})
	h := healthy.Topology("chain").TuplesDelivered
	s := slowed.Topology("chain").TuplesDelivered
	r := restored.Topology("chain").TuplesDelivered
	if s >= h {
		t.Errorf("slow fault did not degrade: slowed %d >= healthy %d", s, h)
	}
	if r <= s {
		t.Errorf("recover did not restore: restored %d <= slowed %d", r, s)
	}
}

// startSpread starts chainTopo with an explicit placement — spouts on
// node 0, "work" bolts on node 1, sinks on node 2 — so tests can crash a
// bolt-carrying node while the spouts survive.
func startSpread(t *testing.T, cfg Config) (*Simulation, *core.Assignment, *cluster.Cluster) {
	t.Helper()
	topo := chainTopo(t, 2, 100*time.Microsecond, 200*time.Microsecond, 256, 20)
	c := emulabCluster(t)
	ids := c.NodeIDs()
	a := core.NewAssignment("chain", "manual")
	hosts := map[string]cluster.NodeID{"spout": ids[0], "work": ids[1], "sink": ids[2]}
	for _, task := range topo.Tasks() {
		a.Place(task.ID, core.Placement{Node: hosts[task.Component], Slot: 0})
	}
	sim, err := New(c, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sim.AddTopology(topo, a); err != nil {
		t.Fatalf("AddTopology: %v", err)
	}
	if err := sim.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return sim, a, c
}

func TestReplayRecoversFailedTrees(t *testing.T) {
	// Crash the bolt-carrying node mid-run: without replay the failed
	// trees are dropped for good; with replay the spout re-emits them
	// (bounded), so TuplesReplayed > 0 and every lost tree is accounted.
	run := func(replay bool) *Result {
		cfg := shortCfg()
		cfg.Replay = replay
		sim, _, c := startSpread(t, cfg)
		victim := c.NodeIDs()[1] // the "work" bolts
		if err := sim.InjectFault(faults.Fault{Kind: faults.Crash, Node: victim, At: 5 * time.Second}); err != nil {
			t.Fatalf("InjectFault: %v", err)
		}
		res, err := sim.Finish()
		if err != nil {
			t.Fatalf("Finish: %v", err)
		}
		return res
	}
	plain := run(false)
	replayed := run(true)
	if plain.TuplesReplayed != 0 || plain.TreesLost != 0 {
		t.Errorf("replay-off run counted replays: %d/%d", plain.TuplesReplayed, plain.TreesLost)
	}
	if replayed.TuplesReplayed == 0 {
		t.Errorf("replay-on run re-emitted nothing (dropped=%d)", replayed.TuplesDropped)
	}
	// Replay must not mint tuples from nothing: delivered stays bounded by
	// emitted, which now includes re-emissions.
	tr := replayed.Topology("chain")
	if tr.TuplesDelivered > tr.TuplesEmitted {
		t.Errorf("delivered %d > emitted %d", tr.TuplesDelivered, tr.TuplesEmitted)
	}
}

func TestReplayOffIsByteIdentical(t *testing.T) {
	// The replay machinery must be invisible when disabled, including in
	// runs with failures: drop-on-failure results match field for field.
	run := func() *Result {
		sim, a, _ := startChain(t, shortCfg())
		victim := a.NodesUsed()[len(a.NodesUsed())-1]
		if err := sim.InjectFault(faults.Fault{Kind: faults.Crash, Node: victim, At: 4 * time.Second}); err != nil {
			t.Fatalf("InjectFault: %v", err)
		}
		res, err := sim.Finish()
		if err != nil {
			t.Fatalf("Finish: %v", err)
		}
		return res
	}
	r1, r2 := run(), run()
	t1, t2 := r1.Topology("chain"), r2.Topology("chain")
	if t1.TuplesEmitted != t2.TuplesEmitted || t1.TuplesDelivered != t2.TuplesDelivered ||
		r1.TuplesDropped != r2.TuplesDropped {
		t.Fatalf("fault path non-deterministic: %d/%d/%d vs %d/%d/%d",
			t1.TuplesEmitted, t1.TuplesDelivered, r1.TuplesDropped,
			t2.TuplesEmitted, t2.TuplesDelivered, r2.TuplesDropped)
	}
}

func TestReassignRestartingRevivesDeadTasks(t *testing.T) {
	sim, a, c := startSpread(t, shortCfg())
	// Crash after the warmup windows so the recovery-time baseline (full
	// post-warmup pre-crash windows) is measurable.
	victim := c.NodeIDs()[1] // the "work" bolts
	if err := sim.InjectFault(faults.Fault{Kind: faults.Crash, Node: victim, At: 4 * time.Second}); err != nil {
		t.Fatalf("InjectFault: %v", err)
	}
	if err := sim.RunTo(5 * time.Second); err != nil {
		t.Fatalf("RunTo: %v", err)
	}
	// Build a failover assignment: every task on the dead node moves to a
	// survivor and restarts there.
	next := a.Clone()
	restart := make(map[int]bool)
	survivor := c.NodeIDs()[3]
	for id, p := range next.Placements {
		if p.Node == victim {
			next.Placements[id] = core.Placement{Node: survivor, Slot: p.Slot}
			restart[id] = true
		}
	}
	if len(restart) == 0 {
		t.Fatal("victim hosted no tasks")
	}
	// Restarting on a dead node must be rejected.
	bad := a.Clone()
	for id := range restart {
		bad.Placements[id] = core.Placement{Node: victim, Slot: 0}
	}
	if _, err := sim.ReassignRestarting("chain", bad, restart); err == nil {
		t.Error("restart on dead node accepted")
	}
	n, err := sim.ReassignRestarting("chain", next, restart)
	if err != nil {
		t.Fatalf("ReassignRestarting: %v", err)
	}
	if n != len(restart) {
		t.Errorf("restarted %d tasks, want %d", n, len(restart))
	}
	preDrop := sim.lanes[0].dropped
	if err := sim.RunTo(8 * time.Second); err != nil {
		t.Fatalf("RunTo: %v", err)
	}
	res, err := sim.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	tr := res.Topology("chain")
	// Flow resumed: windows after the restart show sink arrivals again.
	lastWin := tr.SinkSeries[len(tr.SinkSeries)-1]
	if lastWin == 0 {
		t.Errorf("no throughput after restart: series=%v", tr.SinkSeries)
	}
	if sim.lanes[0].dropped < preDrop {
		t.Errorf("drop counter went backwards")
	}
	if tr.RecoveryTime == 0 {
		t.Errorf("recovery time unmeasured: %v (series=%v)", tr.RecoveryTime, tr.SinkSeries)
	}
}

func TestRecoveryTimeMetric(t *testing.T) {
	w := time.Second
	series := []float64{100, 100, 100, 100, 20, 20, 95, 100}
	// Crash at 3.5s: windows 0-2 are full pre-crash (warmup 1 drops w0);
	// baseline = 100. First recovered window is 6 (95 >= 90), ending at 7s.
	got := recoveryTime(series, 3500*time.Millisecond, w, 1)
	if want := 7*time.Second - 3500*time.Millisecond; got != want {
		t.Errorf("recoveryTime = %v, want %v", got, want)
	}
	// Never recovered.
	flat := []float64{100, 100, 100, 10, 10, 10}
	if got := recoveryTime(flat, 2500*time.Millisecond, w, 1); got != -1 {
		t.Errorf("unrecovered series = %v, want -1", got)
	}
	// Crash before any measurable baseline.
	if got := recoveryTime(series, 500*time.Millisecond, w, 1); got != 0 {
		t.Errorf("unmeasurable baseline = %v, want 0", got)
	}
}

func TestInjectFaultValidation(t *testing.T) {
	c := emulabCluster(t)
	sim, err := New(c, shortCfg())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sim.InjectFault(faults.Fault{Kind: faults.Crash, Node: "ghost", At: time.Second}); err == nil {
		t.Error("unknown node accepted")
	}
	if err := sim.InjectFault(faults.Fault{Kind: faults.Slow, Node: c.NodeIDs()[0], At: time.Second, Factor: 0.5}); err == nil {
		t.Error("invalid slow factor accepted")
	}
	if err := sim.InjectFault(faults.Fault{Kind: faults.Recover, Node: c.NodeIDs()[0], At: time.Second}); err != nil {
		t.Errorf("pre-start recover rejected: %v", err)
	}
}
