package simulator

import (
	"testing"
	"time"

	"rstorm/internal/core"
)

// TestTrailingPartialWindowFlushed is the regression for the dropped-tail
// bug: when Duration is not a multiple of MetricsWindow, the counters of
// the final partial window used to never reach the Observer. Finish must
// deliver them, bounded to the real interval.
func TestTrailingPartialWindowFlushed(t *testing.T) {
	topo := chainTopo(t, 2, 150*time.Microsecond, 100*time.Microsecond, 256, 20)
	c := emulabCluster(t)
	state := core.NewGlobalState(c)
	a, err := core.NewResourceAwareScheduler().Schedule(topo, c, state)
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	sim, err := New(c, Config{
		Duration:      2500 * time.Millisecond,
		MetricsWindow: time.Second,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	obs := &collector{}
	if err := sim.SetObserver(obs); err != nil {
		t.Fatalf("SetObserver: %v", err)
	}
	if err := sim.AddTopology(topo, a); err != nil {
		t.Fatalf("AddTopology: %v", err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got, want := len(obs.windows), 3; got != want {
		t.Fatalf("windows = %d, want %d (2 full + 1 partial tail)", got, want)
	}
	tail := obs.windows[2]
	for _, s := range tail {
		if s.WindowStart != 2*time.Second || s.WindowEnd != 2500*time.Millisecond {
			t.Fatalf("tail window spans [%v, %v), want [2s, 2.5s)", s.WindowStart, s.WindowEnd)
		}
	}
	// Nothing may be lost or double-counted: summed window counters must
	// equal the run totals exactly.
	var processed, emitted int64
	for _, samples := range obs.windows {
		for _, s := range samples {
			processed += s.Processed
			emitted += s.Emitted
		}
	}
	tr := res.Topology("chain")
	if processed != tr.TuplesProcessed {
		t.Errorf("windows saw %d processed, run counted %d", processed, tr.TuplesProcessed)
	}
	if emitted != tr.TuplesEmitted {
		t.Errorf("windows saw %d emitted, run counted %d", emitted, tr.TuplesEmitted)
	}
	var tailWork int64
	for _, s := range tail {
		tailWork += s.Processed
	}
	if tailWork == 0 {
		t.Error("partial tail window carried no work; the flush is vacuous")
	}
}

// TestReassignMidWindowFlushesPartialWindow: a migration landing inside a
// metrics window must first flush the pre-migration slice, so the samples
// attribute that work to the node it actually ran on.
func TestReassignMidWindowFlushesPartialWindow(t *testing.T) {
	c := emulabCluster(t)
	ids := c.NodeIDs()
	topo, _ := twoNodeChain(t, 2*time.Millisecond, 8)
	a := core.NewAssignment("pair", "manual")
	a.Place(0, core.Placement{Node: ids[0], Slot: 0})
	a.Place(1, core.Placement{Node: ids[1], Slot: 0})
	sim, err := New(c, Config{
		Duration:      4 * time.Second,
		MetricsWindow: time.Second,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	obs := &collector{}
	if err := sim.SetObserver(obs); err != nil {
		t.Fatalf("SetObserver: %v", err)
	}
	if err := sim.AddTopology(topo, a); err != nil {
		t.Fatalf("AddTopology: %v", err)
	}
	if err := sim.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := sim.RunTo(1500 * time.Millisecond); err != nil {
		t.Fatalf("RunTo: %v", err)
	}
	next := core.NewAssignment("pair", "manual")
	next.Place(0, core.Placement{Node: ids[0], Slot: 0})
	next.Place(1, core.Placement{Node: ids[2], Slot: 0})
	if moved, err := sim.Reassign("pair", next); err != nil || moved != 1 {
		t.Fatalf("Reassign = %d, %v, want 1 move", moved, err)
	}
	if _, err := sim.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	// Expect flushes at 1s, the partial [1s, 1.5s) slice, then the
	// remainder windows.
	if len(obs.windows) < 3 {
		t.Fatalf("only %d windows observed", len(obs.windows))
	}
	partial := obs.windows[1]
	for _, s := range partial {
		if s.WindowStart != time.Second || s.WindowEnd != 1500*time.Millisecond {
			t.Fatalf("second flush spans [%v, %v), want [1s, 1.5s)", s.WindowStart, s.WindowEnd)
		}
		if s.TaskID == 1 && s.Node != ids[1] {
			t.Errorf("pre-migration slice attributed to %s, want old node %s", s.Node, ids[1])
		}
	}
	after := obs.windows[2]
	for _, s := range after {
		if s.TaskID == 1 && s.Node != ids[2] {
			t.Errorf("post-migration window attributed to %s, want new node %s", s.Node, ids[2])
		}
	}
}

// TestWarmupWindowsZeroExpressible is the regression for the zero-value
// ambiguity: an explicit "no warmup" used to be silently overridden to 1.
// The NoWarmup sentinel must include the first window in the mean, while
// the zero value keeps defaulting to one warm-up window.
func TestWarmupWindowsZeroExpressible(t *testing.T) {
	topo := chainTopo(t, 2, 150*time.Microsecond, 100*time.Microsecond, 256, 20)
	c := emulabCluster(t)
	run := func(warmup int) *Result {
		return runOnce(t, topo, c, core.NewResourceAwareScheduler(), Config{
			Duration:      4 * time.Second,
			MetricsWindow: time.Second,
			WarmupWindows: warmup,
		})
	}
	noWarm := run(NoWarmup)
	if noWarm.WarmupWindows != 0 {
		t.Fatalf("NoWarmup resolved to %d warm-up windows, want 0", noWarm.WarmupWindows)
	}
	series := noWarm.Topology("chain").SinkSeries
	var sum float64
	for _, v := range series {
		sum += v
	}
	if want := sum / float64(len(series)); noWarm.Topology("chain").MeanSinkThroughput != want {
		t.Errorf("0-warmup mean = %v, want %v (all %d windows, first included)",
			noWarm.Topology("chain").MeanSinkThroughput, want, len(series))
	}
	// The zero value still means the default of one warm-up window.
	def := run(0)
	if def.WarmupWindows != 1 {
		t.Errorf("zero-value WarmupWindows resolved to %d, want the default 1", def.WarmupWindows)
	}
	// The first window covers the pipeline fill, so the two means differ —
	// which is exactly why the sentinel must be expressible.
	if def.Topology("chain").MeanSinkThroughput == noWarm.Topology("chain").MeanSinkThroughput &&
		series[0] != series[1] {
		t.Error("warm-up setting had no effect on the mean")
	}
}
