package simulator

import (
	"fmt"
	"time"

	"rstorm/internal/core"
	"rstorm/internal/topology"
	"rstorm/internal/trace"
)

// Runtime tenancy epochs (DESIGN.md §6): the multi-tenant control plane
// admits and evicts topologies while the cluster is loaded, so the
// simulator supports Submit/Kill between RunTo epochs — the same
// pause/mutate/resume discipline as Reassign, sharing its drain path.
//
// KillTopology is Storm's topology teardown scaled to one tenant: every
// task dies in place, queued input tuples fail their trees (spout
// max-pending credits return, counted in Result.TuplesMigrated — the
// administrative drain, not a crash), parked producers are released, and
// the affected nodes' CPU contention is refrozen without the departed
// demand. The run's counters and series stay: an evicted tenant's partial
// results are history, not garbage.
//
// SubmitTopology admits a topology mid-run: a fresh topology starts from
// zero on its assigned nodes, and a previously killed one is revived —
// the same executors restart empty (working sets re-warm, like a
// migration restart) on the new assignment's placements. Contention
// refreezes on every node whose task set changed.

// SubmitTopology admits a scheduled topology into a running simulation,
// between RunTo epochs. Submitting a name that was previously killed
// revives it on the new assignment; submitting a live name is an error.
// Before Start, use AddTopology.
func (s *Simulation) SubmitTopology(topo *topology.Topology, a *core.Assignment) error {
	if !s.started {
		return fmt.Errorf("simulation not started (use AddTopology before Start)")
	}
	if s.finished {
		return fmt.Errorf("simulation already finished")
	}
	for _, r := range s.runs {
		if r.topo.Name() == topo.Name() {
			return s.revive(r, a)
		}
	}
	// Validate before the flush below: a rejected submission must not
	// perturb observer state with a spurious partial flush.
	if a.Topology != topo.Name() {
		return fmt.Errorf("assignment is for %q, topology is %q", a.Topology, topo.Name())
	}
	if !a.Complete(topo) {
		return fmt.Errorf("assignment for %q is incomplete", topo.Name())
	}
	for _, task := range topo.Tasks() {
		if _, ok := s.nodes[a.Placements[task.ID].Node]; !ok {
			return fmt.Errorf("task %d placed on unknown node %q", task.ID, a.Placements[task.ID].Node)
		}
	}
	// Flush the partial window before the cluster changes shape, so the
	// pre-admission slice is attributed to the contention it ran under.
	s.flushPartialWindow()
	run, err := s.addRun(topo, a)
	if err != nil {
		return err
	}
	affected := make(map[*simNode]bool, len(run.ordered))
	for _, st := range run.ordered {
		affected[st.node] = true
	}
	s.refreeze(affected)
	for _, st := range run.ordered {
		if st.isSpout == 1 {
			st.node.lane.scheduleTask(0, evSpoutCycle, st)
		}
	}
	s.journalRecord(trace.CodeTopologySubmitted, topo.Name(), "", -1, "")
	return nil
}

// KillTopology tears a running topology down mid-run: its tasks die in
// place and their queued tuples drain through the migration path. The
// run's history (throughput series, totals) is retained for the Result,
// and the name may be revived later via SubmitTopology.
func (s *Simulation) KillTopology(name string) error {
	if !s.started {
		return fmt.Errorf("simulation not started")
	}
	if s.finished {
		return fmt.Errorf("simulation already finished")
	}
	var run *topoRun
	for _, r := range s.runs {
		if r.topo.Name() == name {
			run = r
			break
		}
	}
	if run == nil {
		return fmt.Errorf("topology %q is not part of this simulation", name)
	}
	live := false
	for _, st := range run.ordered {
		if !st.dead {
			live = true
			break
		}
	}
	if !live {
		return fmt.Errorf("topology %q is already dead", name)
	}

	// Attribute the pre-kill slice of the window before anything changes.
	s.flushPartialWindow()
	affected := make(map[*simNode]bool, len(run.ordered))
	for _, st := range run.ordered {
		if st.dead {
			continue
		}
		st.dead = true
		st.busy = false
		st.parked = false
		ln := st.node.lane
		tuples, unblocked := st.queue.drain()
		for _, tup := range tuples {
			ln.migrateTuple(tup)
		}
		for _, comp := range unblocked {
			ln.scheduleComplete(0, comp)
		}
		// Credit the busy time accrued on this host so end-of-run
		// utilization attribution survives a later revival elsewhere.
		delta := st.tracker.Busy() - st.creditedBusy
		st.node.departedWeighted += float64(delta) * st.comp.EffectiveCPUPoints()
		st.creditedBusy = st.tracker.Busy()
		// A teardown is a restart: the working set does not survive it.
		st.handled = 0
		affected[st.node] = true
	}
	s.refreeze(affected)
	s.journalRecord(trace.CodeTopologyKilled, name, "", -1, "")
	return nil
}

// revive restarts a fully killed topology on a new assignment. Stale
// in-flight work from before the kill self-drains: queues were emptied at
// kill, tuples still traveling toward the executors dropped on arrival,
// and outstanding spout trees complete as their instances fail, returning
// max-pending credits — a revived spout whose window is still partly held
// by stale trees simply parks until they finish draining.
func (s *Simulation) revive(run *topoRun, a *core.Assignment) error {
	name := run.topo.Name()
	for _, st := range run.ordered {
		if !st.dead {
			return fmt.Errorf("topology %q already added", name)
		}
	}
	if a.Topology != name {
		return fmt.Errorf("assignment is for %q, topology is %q", a.Topology, name)
	}
	if !a.Complete(run.topo) {
		return fmt.Errorf("assignment for %q is incomplete", name)
	}
	for _, st := range run.ordered {
		np := a.Placements[st.task.ID]
		node, ok := s.nodes[np.Node]
		if !ok {
			return fmt.Errorf("task %d revived on unknown node %q", st.task.ID, np.Node)
		}
		if node.dead {
			return fmt.Errorf("task %d revived on dead node %q", st.task.ID, np.Node)
		}
	}

	s.flushPartialWindow()
	affected := make(map[*simNode]bool, 2*len(run.ordered))
	for _, st := range run.ordered {
		np := a.Placements[st.task.ID]
		next := s.nodes[np.Node]
		affected[st.node] = true
		removeTask(st.node, st)
		next.tasks = append(next.tasks, st)
		next.everHosted = true
		st.node = next
		st.placement = np
		st.dead = false
		st.busy = false
		st.parked = false
		// outBuf/outIdx are deliberately untouched: a stale delivery
		// completion from before the kill (still draining toward dead
		// consumers) finishes its old sequence deterministically, and every
		// new emission resets the cursor itself (spoutFire/boltFire).
		affected[next] = true
	}
	run.assignment = a
	s.refreeze(affected)
	s.buildRouters(run)
	if s.sharded {
		// Stale events homed by revived tasks (replay backoffs, in-flight
		// arrivals) must follow them to their new lanes.
		s.rehomeEvents()
	}
	for _, st := range run.ordered {
		if st.isSpout == 1 {
			st.node.lane.scheduleTask(0, evSpoutCycle, st)
		}
	}
	s.journalRecord(trace.CodeTopologySubmitted, name, "", -1, "revived")
	return nil
}

// refreeze recomputes contention on every affected live node, in cluster
// declaration order for determinism.
func (s *Simulation) refreeze(affected map[*simNode]bool) {
	for _, id := range s.order {
		if n := s.nodes[id]; affected[n] && !n.dead {
			s.freezeNode(n)
		}
	}
}

// Now exposes the simulation's current virtual time — epoch drivers log
// admission and eviction against it.
func (s *Simulation) Now() time.Duration { return s.now() }
