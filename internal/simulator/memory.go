package simulator

import "rstorm/internal/trace"

// Runtime memory model (DESIGN.md §4). When Config.MemoryModel is set, each
// task's resident memory is accounted online:
//
//	resident(t) = workingSet(t) + queueBytes(t)
//
// where workingSet ramps linearly from zero to the component's *true*
// steady footprint (ExecProfile.MemMB, falling back to the declared
// MemoryLoad) over ExecProfile.MemGrowTuples handled tuples — the
// state-growth term that makes memory mis-declarations a runtime
// phenomenon rather than a t=0 violation — and queueBytes is the payload
// resident in the task's input queue.
//
// Memory is the hard axis (§3): a node whose residents exceed
// Capacity.MemoryMB OOM-kills its worst-offending (largest-resident) task,
// repeatedly until the node fits again. Enforcement runs at metrics-window
// boundaries — the sampling cadence of an OS OOM killer — after the
// observer flush, so the adaptive controller always sees the over-capacity
// window that triggered a kill. A killed task is dead for the rest of the
// run: its queue drains through the failure path (trees fail, spouts
// recover their max-pending credits, drops counted in
// Result.TuplesDropped), its in-service tuple fails via the dead-task
// credit path in boltFire, and its working set is freed. Kills are counted
// in Result.TasksOOMKilled.
//
// With MemoryModel unset nothing here runs and results are byte-identical
// to the memory-blind simulator.

// residentMemMB returns a task's resident memory in MB under the runtime
// memory model. Dead tasks hold nothing: their state is freed and their
// queues were drained at kill time.
//
//rstorm:hotpath
func (s *Simulation) residentMemMB(t *simTask) float64 {
	if t.dead {
		return 0
	}
	mem := t.comp.EffectiveMemMB()
	if grow := t.comp.Profile.MemGrowTuples; grow > 0 {
		if n := t.handled; n < int64(grow) {
			mem = mem * float64(n) / float64(grow)
		}
	}
	return mem + float64(t.queue.residentBytes())/(1<<20)
}

// nodeResidentMemMB sums the resident memory of a node's live tasks.
//
//rstorm:hotpath
func (s *Simulation) nodeResidentMemMB(n *simNode) float64 {
	var total float64
	for _, t := range n.tasks {
		total += s.residentMemMB(t)
	}
	return total
}

// oomCheck enforces the memory hard axis on the lane's live nodes, then
// schedules the lane's next check. Each lane polices only its own nodes
// (the legacy single lane holds the whole cluster, preserving the old
// all-nodes sweep order). Nodes are visited in cluster declaration order
// and kills pick the strictly-largest resident (first in hosting order on
// ties), so enforcement is deterministic for a fixed seed.
func (ln *simLane) oomCheck() {
	s := ln.sim
	for _, n := range ln.nodes {
		if n.dead || n.spec.Capacity.MemoryMB <= 0 {
			continue
		}
		killed := false
		for s.nodeResidentMemMB(n) > n.spec.Capacity.MemoryMB {
			worst := s.worstOffender(n)
			if worst == nil {
				break
			}
			ln.oomKill(worst)
			killed = true
		}
		if killed {
			// The node survives with fewer residents: refreeze its CPU
			// overcommit stretch so the survivors' service times reflect
			// the dead tasks' departed demand.
			s.freezeNode(n)
		}
	}
	if next := ln.eng.Now() + s.cfg.MetricsWindow; next <= s.cfg.Duration {
		ln.scheduleTask(s.cfg.MetricsWindow, evOOMCheck, nil)
	}
}

// worstOffender returns the node's live task with the largest resident
// memory (ties resolve to the earliest-hosted task), or nil if none left.
func (s *Simulation) worstOffender(n *simNode) *simTask {
	var worst *simTask
	var worstMem float64
	for _, t := range n.tasks {
		if t.dead {
			continue
		}
		if m := s.residentMemMB(t); worst == nil || m > worstMem {
			worst, worstMem = t, m
		}
	}
	return worst
}

// oomKill marks a task dead and releases everything it holds, mirroring
// failNode scaled to one executor: queued tuples fail their trees (credits
// return to spouts, drops counted), parked producers are released, and a
// tuple mid-service fails through boltFire's dead-task path. A killed
// spout's in-flight trees complete or fail downstream as usual, returning
// every max-pending credit to the (dead, so never re-firing) spout.
func (ln *simLane) oomKill(t *simTask) {
	t.dead = true
	ln.oomKilled++
	ln.sim.journalRecord(trace.CodeOOMKill, t.run.topo.Name(), string(t.node.id),
		t.task.ID, t.comp.Name)
	tuples, unblocked := t.queue.drain()
	for _, tup := range tuples {
		ln.dropTuple(tup)
	}
	for _, comp := range unblocked {
		ln.scheduleComplete(0, comp)
	}
}
