// Package simulator executes scheduled Storm topologies on a discrete-event
// simulation of the paper's testbed. It models the mechanisms the
// evaluation (§6) actually measures:
//
//   - Executors process one tuple at a time; per-tuple service time is the
//     component's profile cost stretched by the host node's CPU
//     overcommit factor (soft-constraint degradation, §3).
//   - Spouts are closed-loop with a max-pending window over tuple trees,
//     which is Storm's acking flow control: end-to-end latency therefore
//     throttles throughput, so colocation pays off for network-bound
//     topologies.
//   - Inter-node transfers consume NIC bandwidth through a bounded FIFO
//     egress queue; intra-node hand-offs do not. Latency follows the
//     four-level hierarchy of §4.
//   - Bounded queues everywhere make backpressure propagate: one
//     overloaded task throttles the whole topology (the Fig. 9c / Fig. 13
//     collapse).
//
// Simplifications (documented in DESIGN.md): ack completion notification is
// free (no acker executors), and CPU contention uses a static
// processor-sharing slowdown per node — driven by the components' *true*
// demand (ExecProfile.CPUPoints, defaulting to the declared load) and
// refrozen at Reassign epoch boundaries — rather than instantaneous
// sharing. An optional Observer taps per-task runtime metrics each window
// for the adaptive control loop (internal/adaptive).
package simulator

import (
	"fmt"
	"time"

	"rstorm/internal/trace"
)

// Config controls a simulation run.
type Config struct {
	// Duration is the simulated run length. The paper runs topologies
	// for 15 minutes; simulations reproduce the same steady state in
	// less virtual time. Default 60s.
	Duration time.Duration
	// MetricsWindow is the throughput bucket size. The paper reports
	// tuples per 10 s. Default 10s.
	MetricsWindow time.Duration
	// QueueCapacity bounds each task's input queue (tuples). Default 128.
	QueueCapacity int
	// NICQueueCapacity bounds each node's egress queue (tuples).
	// Default 512.
	NICQueueCapacity int
	// NICWindow caps transfers awaiting remote acceptance per NIC,
	// approximating TCP windowing. Default 64.
	NICWindow int
	// MaxSpoutPending is the per-spout-task cap on incomplete tuple
	// trees (Storm's topology.max.spout.pending). Default 64.
	MaxSpoutPending int
	// TupleTimeout is Storm's topology.message.timeout.secs: a tuple
	// arriving at a sink later than this after its spout emit does not
	// count as delivered (it would have been failed and replayed).
	// Under heavy overload end-to-end latency exceeds the timeout and
	// measured throughput collapses toward zero, which is the paper's
	// Fig. 13 Processing-topology behaviour. Zero disables timeouts.
	TupleTimeout time.Duration
	// Seed drives the deterministic RNG. Default 1.
	Seed int64
	// WarmupWindows are dropped from mean-throughput summaries, matching
	// the paper's convergence wait (§6.2). Default 1. Zero also means the
	// default (the zero value must not silently change summaries); pass
	// NoWarmup (-1) to include every window in the mean.
	WarmupWindows int
	// Replay enables at-least-once delivery (Storm's acking contract,
	// DESIGN.md §7): a tuple tree failed by a crash or queue drain
	// re-emits its root from the spout — on the credit it already holds —
	// after an exponential backoff, up to ReplayMaxRetries times, instead
	// of being dropped for good. Off by default: with replay unset, runs
	// are byte-identical to the drop-on-failure simulator.
	Replay bool
	// ReplayMaxRetries bounds re-emissions per tuple tree (attempts beyond
	// the original emission). Default 3 when Replay is on.
	ReplayMaxRetries int
	// ReplayBackoff is the delay before a failed tree's first replay;
	// attempt n waits ReplayBackoff << n. Default 50ms when Replay is on.
	ReplayBackoff time.Duration
	// MemoryModel enables the runtime memory model (DESIGN.md §4): each
	// task's resident memory — queue-resident tuple bytes plus its
	// (possibly growing) working set per ExecProfile — is accounted
	// online, and a node whose residents exceed Capacity.MemoryMB
	// OOM-kills its worst offender at each metrics-window boundary.
	// Off by default: with the model unset, runs are byte-identical to
	// the memory-blind simulator.
	MemoryModel bool
	// LatencyHistograms enables per-sink-task log-bucketed latency
	// histograms (DESIGN.md §8): complete-tree spout-to-sink latency is
	// recorded on the hot path (integer adds, no allocation), window
	// summaries land in TaskSample.Latency, and per-topology
	// p50/p95/p99 roll up into the Result. Off by default: with
	// histograms unset, runs are byte-identical to the unmeasured
	// simulator.
	LatencyHistograms bool
	// TraceSampleEvery samples every Nth spout root emission into the
	// tuple tracer (DESIGN.md §8): the sampled tree carries a trace
	// context through ack-tree propagation and every hop records a
	// queue-wait/service/network span. Sampling is a deterministic
	// counter, not the RNG, so traced runs stay byte-identical to
	// untraced ones everywhere outside the tracer itself. Zero (the
	// default) disables tracing.
	TraceSampleEvery int
	// TraceMaxSpans bounds the tracer's span ring; the oldest spans are
	// overwritten when it fills. Default trace.DefaultMaxSpans when
	// tracing is enabled.
	TraceMaxSpans int
	// Shards selects the execution kernel (DESIGN.md §11). Zero (the
	// default) runs the legacy single-threaded kernel, byte-identical to
	// the pre-sharding simulator. Any value >= 1 runs the sharded
	// conservative-parallel kernel — one event-loop lane per rack,
	// advanced in inter-rack-latency lookahead windows — on min(Shards,
	// racks) worker goroutines. The sharded kernel's results are
	// byte-identical for every Shards value (the lane partition depends
	// only on the cluster), but differ slightly from the legacy kernel's:
	// cross-rack ack hand-offs pay the inter-rack latency, and spout keys
	// come from per-task streams instead of one shared RNG. Incompatible
	// with TraceSampleEvery and with an attached decision journal, which
	// assume a single globally-ordered event loop.
	Shards int
}

// NoWarmup is the WarmupWindows sentinel for "drop nothing": the mean
// includes the first window. (0 keeps the default of 1 warm-up window, so
// zero-valued Configs behave as before.)
const NoWarmup = -1

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Duration == 0 {
		c.Duration = 60 * time.Second
	}
	if c.MetricsWindow == 0 {
		c.MetricsWindow = 10 * time.Second
	}
	if c.QueueCapacity == 0 {
		c.QueueCapacity = 128
	}
	if c.NICQueueCapacity == 0 {
		c.NICQueueCapacity = 512
	}
	if c.NICWindow == 0 {
		c.NICWindow = 64
	}
	if c.MaxSpoutPending == 0 {
		c.MaxSpoutPending = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.WarmupWindows == 0 {
		c.WarmupWindows = 1
	} else if c.WarmupWindows < 0 {
		c.WarmupWindows = 0 // NoWarmup sentinel: 0 warm-up windows
	}
	if c.Replay {
		if c.ReplayMaxRetries == 0 {
			c.ReplayMaxRetries = 3
		}
		if c.ReplayBackoff == 0 {
			c.ReplayBackoff = 50 * time.Millisecond
		}
	}
	if c.TraceSampleEvery > 0 && c.TraceMaxSpans == 0 {
		c.TraceMaxSpans = trace.DefaultMaxSpans
	}
	return c
}

// validate rejects nonsensical configurations.
func (c Config) validate() error {
	if c.Duration <= 0 {
		return fmt.Errorf("duration %v, want > 0", c.Duration)
	}
	if c.MetricsWindow <= 0 {
		return fmt.Errorf("metrics window %v, want > 0", c.MetricsWindow)
	}
	if c.MetricsWindow > c.Duration {
		return fmt.Errorf("metrics window %v exceeds duration %v", c.MetricsWindow, c.Duration)
	}
	if c.QueueCapacity < 1 {
		return fmt.Errorf("queue capacity %d, want >= 1", c.QueueCapacity)
	}
	if c.NICQueueCapacity < 1 {
		return fmt.Errorf("NIC queue capacity %d, want >= 1", c.NICQueueCapacity)
	}
	if c.NICWindow < 1 {
		return fmt.Errorf("NIC window %d, want >= 1", c.NICWindow)
	}
	if c.MaxSpoutPending < 1 {
		return fmt.Errorf("max spout pending %d, want >= 1", c.MaxSpoutPending)
	}
	// WarmupWindows needs no validation: withDefaults maps 0 to the
	// default of 1 and any negative (the NoWarmup sentinel) to 0.
	if c.TupleTimeout < 0 {
		return fmt.Errorf("tuple timeout %v, want >= 0", c.TupleTimeout)
	}
	if c.Replay {
		if c.ReplayMaxRetries < 1 {
			return fmt.Errorf("replay max retries %d, want >= 1", c.ReplayMaxRetries)
		}
		if c.ReplayBackoff <= 0 {
			return fmt.Errorf("replay backoff %v, want > 0", c.ReplayBackoff)
		}
	}
	if c.TraceSampleEvery < 0 {
		return fmt.Errorf("trace sample every %d, want >= 0", c.TraceSampleEvery)
	}
	if c.TraceMaxSpans < 0 {
		return fmt.Errorf("trace max spans %d, want >= 0", c.TraceMaxSpans)
	}
	if c.Shards < 0 {
		return fmt.Errorf("shards %d, want >= 0", c.Shards)
	}
	if c.Shards > 0 && c.TraceSampleEvery > 0 {
		return fmt.Errorf("tuple tracing requires the single-threaded kernel (shards = 0)")
	}
	return nil
}
