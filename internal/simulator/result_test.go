package simulator

import "testing"

func TestTotalMeanThroughputBitStable(t *testing.T) {
	// Sorted-name order is the contract: with these adversarial values
	// any other summation order changes the low bits (rstorm-lint
	// determinism finding, PR 8).
	vals := []float64{1e16, 1, -1e16}
	r := &Result{Topologies: map[string]*TopologyResult{
		"a": {MeanSinkThroughput: vals[0]},
		"b": {MeanSinkThroughput: vals[1]},
		"c": {MeanSinkThroughput: vals[2]},
	}}
	want := 0.0
	for _, v := range vals {
		want += v
	}
	for i := 0; i < 100; i++ {
		if got := r.TotalMeanThroughput(); got != want {
			t.Fatalf("call %d: TotalMeanThroughput = %v, want bit-identical %v", i, got, want)
		}
	}
}
