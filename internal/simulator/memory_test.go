package simulator

import (
	"reflect"
	"testing"
	"time"

	"rstorm/internal/cluster"
	"rstorm/internal/core"
	"rstorm/internal/topology"
)

// memChain builds spout -> cache -> sink where the cache stage's true
// working set (memMB, ramping over growTuples handled tuples) is
// independent of its declared memory.
func memChain(t *testing.T, cachePar int, declMB, memMB float64, growTuples int) *topology.Topology {
	t.Helper()
	light := topology.ExecProfile{CPUPerTuple: 500 * time.Microsecond, TupleBytes: 512}
	b := topology.NewBuilder("memchain")
	b.SetSpout("spout", 1).SetCPULoad(10).SetMemoryLoad(64).SetProfile(light)
	b.SetBolt("cache", cachePar).ShuffleGrouping("spout").
		SetCPULoad(8).SetMemoryLoad(declMB).
		SetProfile(topology.ExecProfile{
			CPUPerTuple:   100 * time.Microsecond,
			TupleBytes:    512,
			MemMB:         memMB,
			MemGrowTuples: growTuples,
		})
	b.SetBolt("sink", 1).ShuffleGrouping("cache").
		SetCPULoad(10).SetMemoryLoad(64).SetProfile(light)
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return topo
}

// packAll places every task of topo on a single node.
func packAll(topo *topology.Topology, node cluster.NodeID) *core.Assignment {
	a := core.NewAssignment(topo.Name(), "manual")
	for _, task := range topo.Tasks() {
		a.Place(task.ID, core.Placement{Node: node, Slot: 0})
	}
	return a
}

// TestOOMKillsUntilNodeFits: a packed node whose cache working sets grow
// past capacity must shed tasks one at a time — worst offender first —
// until the residents fit, counting kills and dropped tuples, without
// wedging the spout.
func TestOOMKillsUntilNodeFits(t *testing.T) {
	c := emulabCluster(t)
	// 3 cache tasks ramping to 900 MB each: 2700 > 2048, so exactly one
	// must die (2*900 + light overhead < 2048).
	topo := memChain(t, 3, 64, 900, 2000)
	sim, err := New(c, Config{
		Duration:      12 * time.Second,
		MetricsWindow: 500 * time.Millisecond,
		MemoryModel:   true,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sim.AddTopology(topo, packAll(topo, c.NodeIDs()[0])); err != nil {
		t.Fatalf("AddTopology: %v", err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.TasksOOMKilled != 1 {
		t.Errorf("TasksOOMKilled = %d, want 1 (2 of 3 caches fit)", res.TasksOOMKilled)
	}
	tr := res.Topology("memchain")
	if tr.TuplesDelivered == 0 {
		t.Error("no tuples delivered after the kill; topology wedged")
	}
	// The survivors keep flowing: the final window must still see sink
	// arrivals (the run is 24 windows; the kill lands around window 4).
	series := tr.SinkSeries
	if series[len(series)-1] == 0 {
		t.Errorf("final window throughput 0; spout wedged after OOM kill: %v", series)
	}
}

// TestOOMKillSpoutReturnsCredits: OOM-killing a spout must not strand its
// in-flight tuple trees — every max-pending credit comes back as the
// downstream tuples complete or fail, leaving inFlight at zero.
func TestOOMKillSpoutReturnsCredits(t *testing.T) {
	c := emulabCluster(t)
	b := topology.NewBuilder("spoutoom")
	b.SetMaxSpoutPending(4)
	// The spout itself carries the growing working set (a replaying
	// source buffering unacked batches); it exceeds node capacity alone.
	b.SetSpout("spout", 1).SetCPULoad(10).SetMemoryLoad(64).
		SetProfile(topology.ExecProfile{
			CPUPerTuple:   500 * time.Microsecond,
			TupleBytes:    512,
			MemMB:         3000,
			MemGrowTuples: 100,
		})
	b.SetBolt("sink", 1).ShuffleGrouping("spout").
		SetCPULoad(10).SetMemoryLoad(64).
		SetProfile(topology.ExecProfile{CPUPerTuple: 20 * time.Millisecond, TupleBytes: 512})
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	ids := c.NodeIDs()
	a := core.NewAssignment("spoutoom", "manual")
	a.Place(0, core.Placement{Node: ids[0], Slot: 0})
	a.Place(1, core.Placement{Node: ids[1], Slot: 0})

	sim, err := New(c, Config{
		Duration:      4 * time.Second,
		MetricsWindow: 250 * time.Millisecond,
		MemoryModel:   true,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sim.AddTopology(topo, a); err != nil {
		t.Fatalf("AddTopology: %v", err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.TasksOOMKilled != 1 {
		t.Fatalf("TasksOOMKilled = %d, want 1 (the spout)", res.TasksOOMKilled)
	}
	spout := sim.runs[0].tasks[0]
	if !spout.dead {
		t.Fatal("spout not dead; the worst offender was mis-picked")
	}
	// The slow sink (20ms per tuple) guarantees trees were in flight at
	// kill time; all of them must have completed and returned credits.
	if spout.inFlight != 0 {
		t.Errorf("spout inFlight = %d after run end, want 0 (max-pending credits leaked)",
			spout.inFlight)
	}
	if tr := res.Topology("spoutoom"); tr.TuplesEmitted == 0 {
		t.Error("spout never emitted; the scenario is vacuous")
	}
}

// TestOOMKillOnCPUOvercommittedNode: when the OOM'd node is also CPU
// overcommitted, the kill must refreeze the node's contention — the
// survivors' slowdown drops because the dead task's CPU demand departed
// with it.
func TestOOMKillOnCPUOvercommittedNode(t *testing.T) {
	c := emulabCluster(t)
	// 3 caches at 60 declared-and-true CPU points: 180 on a 100-point
	// node plus light tasks -> slowdown well above 1. Memory: 3 * 900
	// ramps past 2048, one kill brings it to 1800 + overhead.
	light := topology.ExecProfile{CPUPerTuple: 500 * time.Microsecond, TupleBytes: 512}
	b := topology.NewBuilder("memcpu")
	b.SetSpout("spout", 1).SetCPULoad(10).SetMemoryLoad(64).SetProfile(light)
	b.SetBolt("cache", 3).ShuffleGrouping("spout").
		SetCPULoad(60).SetMemoryLoad(64).
		SetProfile(topology.ExecProfile{
			CPUPerTuple:   100 * time.Microsecond,
			TupleBytes:    512,
			MemMB:         900,
			MemGrowTuples: 2000,
		})
	b.SetBolt("sink", 1).ShuffleGrouping("cache").
		SetCPULoad(10).SetMemoryLoad(64).SetProfile(light)
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}

	sim, err := New(c, Config{
		Duration:      12 * time.Second,
		MetricsWindow: 500 * time.Millisecond,
		MemoryModel:   true,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	obs := &collector{}
	if err := sim.SetObserver(obs); err != nil {
		t.Fatalf("SetObserver: %v", err)
	}
	if err := sim.AddTopology(topo, packAll(topo, c.NodeIDs()[0])); err != nil {
		t.Fatalf("AddTopology: %v", err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.TasksOOMKilled != 1 {
		t.Fatalf("TasksOOMKilled = %d, want 1", res.TasksOOMKilled)
	}
	// Slowdown of a surviving cache task: 200/100 = 2.0 before the kill
	// (two spout/sink tasks at 10 + three caches at 60), 140/100 = 1.4
	// after.
	survivorSlowdown := func(w int) float64 {
		for _, s := range obs.windows[w] {
			if s.Component == "cache" && !s.Dead {
				return s.Slowdown
			}
		}
		t.Fatalf("window %d: no live cache task", w)
		return 0
	}
	first, last := survivorSlowdown(0), survivorSlowdown(len(obs.windows)-1)
	if first <= 1.5 {
		t.Errorf("pre-kill slowdown %v, want ~2.0 (node must start overcommitted)", first)
	}
	if last >= first {
		t.Errorf("slowdown did not drop after OOM kill: first %v, last %v "+
			"(freezeNode still counts the dead task)", first, last)
	}
}

// TestOOMKillOrderDeterministic: the kill sequence is part of the seeded
// DES — identical runs must kill identical tasks in identical order, and
// the full Result must be reproducible.
func TestOOMKillOrderDeterministic(t *testing.T) {
	run := func() (*Result, []int) {
		c := emulabCluster(t)
		topo := memChain(t, 6, 64, 1408, 2000)
		sim, err := New(c, Config{
			Duration:      12 * time.Second,
			MetricsWindow: 500 * time.Millisecond,
			Seed:          7,
			MemoryModel:   true,
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if err := sim.AddTopology(topo, packAll(topo, c.NodeIDs()[0])); err != nil {
			t.Fatalf("AddTopology: %v", err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		var dead []int
		for _, st := range sim.runs[0].ordered {
			if st.dead {
				dead = append(dead, st.task.ID)
			}
		}
		return res, dead
	}
	res1, dead1 := run()
	res2, dead2 := run()
	if len(dead1) == 0 {
		t.Fatal("no OOM kills happened; the scenario is vacuous")
	}
	if !reflect.DeepEqual(dead1, dead2) {
		t.Errorf("kill sets diverged: %v vs %v", dead1, dead2)
	}
	if !reflect.DeepEqual(res1, res2) {
		t.Errorf("seeded runs diverged:\nfirst:  %+v\nsecond: %+v", res1, res2)
	}
}

// TestMemoryModelOffNeverKills: the same over-capacity working sets with
// MemoryModel unset must run exactly as the memory-blind simulator did —
// no kills, no drops, memory fields zero in every sample.
func TestMemoryModelOffNeverKills(t *testing.T) {
	c := emulabCluster(t)
	topo := memChain(t, 6, 64, 1408, 2000)
	sim, err := New(c, Config{
		Duration:      6 * time.Second,
		MetricsWindow: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	obs := &collector{}
	if err := sim.SetObserver(obs); err != nil {
		t.Fatalf("SetObserver: %v", err)
	}
	if err := sim.AddTopology(topo, packAll(topo, c.NodeIDs()[0])); err != nil {
		t.Fatalf("AddTopology: %v", err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.TasksOOMKilled != 0 || res.TuplesDropped != 0 {
		t.Errorf("model off: kills=%d drops=%d, want 0/0",
			res.TasksOOMKilled, res.TuplesDropped)
	}
	for _, samples := range obs.windows {
		for _, s := range samples {
			if s.ResidentMemMB != 0 || s.NodeMemCapacityMB != 0 {
				t.Fatalf("memory fields populated with the model off: %+v", s)
			}
		}
	}
}
