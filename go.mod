module rstorm

go 1.24
