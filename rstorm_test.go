package rstorm_test

import (
	"errors"
	"testing"
	"time"

	"rstorm"
)

// buildWordCount builds a small keyed-aggregation topology through the
// public API.
func buildWordCount(t *testing.T) *rstorm.Topology {
	t.Helper()
	b := rstorm.NewTopologyBuilder("wordcount")
	b.SetSpout("words", 4).SetCPULoad(25).SetMemoryLoad(512).
		SetProfile(rstorm.ExecProfile{CPUPerTuple: 200 * time.Microsecond, TupleBytes: 256})
	b.SetBolt("split", 4).ShuffleGrouping("words").
		SetCPULoad(25).SetMemoryLoad(512).
		SetProfile(rstorm.ExecProfile{CPUPerTuple: 150 * time.Microsecond, TupleBytes: 128})
	b.SetBolt("count", 4).FieldsGrouping("split", "word").
		SetCPULoad(25).SetMemoryLoad(512).
		SetProfile(rstorm.ExecProfile{CPUPerTuple: 100 * time.Microsecond, TupleBytes: 64})
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return topo
}

func TestPublicAPIEndToEnd(t *testing.T) {
	topo := buildWordCount(t)
	c, err := rstorm.Emulab12()
	if err != nil {
		t.Fatalf("Emulab12: %v", err)
	}
	result, err := rstorm.ScheduleAndSimulate(c,
		rstorm.SimConfig{Duration: 5 * time.Second, MetricsWindow: time.Second},
		rstorm.NewResourceAwareScheduler(), topo)
	if err != nil {
		t.Fatalf("ScheduleAndSimulate: %v", err)
	}
	tr := result.Topology("wordcount")
	if tr == nil || tr.TuplesDelivered == 0 {
		t.Fatalf("no throughput: %+v", tr)
	}
	if tr.NodesUsed == 0 || tr.NodesUsed > 12 {
		t.Errorf("nodes used = %d", tr.NodesUsed)
	}
}

func TestPublicAPISchedulers(t *testing.T) {
	topo := buildWordCount(t)
	c, err := rstorm.Emulab12()
	if err != nil {
		t.Fatalf("Emulab12: %v", err)
	}
	for _, sched := range []rstorm.Scheduler{
		rstorm.NewResourceAwareScheduler(),
		rstorm.NewEvenScheduler(),
		rstorm.NewOfflineLinearScheduler(),
	} {
		state := rstorm.NewGlobalState(c)
		a, err := sched.Schedule(topo, c, state)
		if err != nil {
			t.Fatalf("%s: %v", sched.Name(), err)
		}
		if !a.Complete(topo) {
			t.Errorf("%s produced incomplete assignment", sched.Name())
		}
	}
}

func TestPublicAPIInsufficientResources(t *testing.T) {
	b := rstorm.NewTopologyBuilder("huge")
	b.SetSpout("s", 1).SetMemoryLoad(1 << 20) // 1 TB
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	c, err := rstorm.Emulab12()
	if err != nil {
		t.Fatalf("Emulab12: %v", err)
	}
	_, err = rstorm.NewResourceAwareScheduler().Schedule(topo, c, rstorm.NewGlobalState(c))
	if !errors.Is(err, rstorm.ErrInsufficientResources) {
		t.Fatalf("err = %v, want ErrInsufficientResources", err)
	}
}

func TestPublicAPINimbusLifecycle(t *testing.T) {
	c, err := rstorm.Emulab12()
	if err != nil {
		t.Fatalf("Emulab12: %v", err)
	}
	n, err := rstorm.NewNimbus(c, rstorm.NewResourceAwareScheduler())
	if err != nil {
		t.Fatalf("NewNimbus: %v", err)
	}
	for _, id := range c.NodeIDs() {
		if _, err := n.StartSupervisor(id); err != nil {
			t.Fatalf("StartSupervisor: %v", err)
		}
	}
	topo := buildWordCount(t)
	if err := n.SubmitTopology(topo); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if scheduled := n.Tick(); len(scheduled) != 1 {
		t.Fatalf("Tick scheduled %v", scheduled)
	}
	if n.Assignment("wordcount") == nil {
		t.Fatal("assignment missing")
	}
	if err := n.KillTopology("wordcount"); err != nil {
		t.Fatalf("Kill: %v", err)
	}
}

func TestPublicAPICustomWeights(t *testing.T) {
	topo := buildWordCount(t)
	c, err := rstorm.Emulab12()
	if err != nil {
		t.Fatalf("Emulab12: %v", err)
	}
	sched := rstorm.NewResourceAwareScheduler(rstorm.WithWeights(rstorm.Weights{
		CPU:       0.01,
		Memory:    0.001,
		Bandwidth: 2,
	}))
	a, err := sched.Schedule(topo, c, rstorm.NewGlobalState(c))
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if !a.Complete(topo) {
		t.Fatal("incomplete")
	}
}

func TestPublicAPIClusterBuilder(t *testing.T) {
	c, err := rstorm.NewClusterBuilder().
		AddNode("a", "r1", rstorm.EmulabNodeSpec()).
		AddNode("b", "r1", rstorm.EmulabNodeSpec()).
		AddNode("c", "r2", rstorm.NodeSpec{
			Capacity: rstorm.ResourceVector{CPU: 400, MemoryMB: 8192, Bandwidth: 1000},
			Slots:    8,
			NICMbps:  1000,
		}).
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if c.Size() != 3 || len(c.Racks()) != 2 {
		t.Errorf("cluster shape: %d nodes, %d racks", c.Size(), len(c.Racks()))
	}
	if got := c.Node("c").Spec.Capacity.CPU; got != 400 {
		t.Errorf("custom node CPU = %v", got)
	}
}
