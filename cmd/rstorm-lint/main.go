// Command rstorm-lint checks the repository's invariants-as-lint suite
// (DESIGN.md §9): determinism of scheduling/control-plane packages,
// zero-alloc //rstorm:hotpath functions, journal reason-code
// exhaustiveness, and StatisticServer route discipline.
//
// Standalone (whole-program checks included):
//
//	go build -o rstorm-lint ./cmd/rstorm-lint && ./rstorm-lint ./...
//
// As a vet tool (per-package, driven and cached by cmd/go):
//
//	go vet -vettool=$(pwd)/rstorm-lint ./...
package main

import "rstorm/internal/analysis"

func main() {
	analysis.Main()
}
