// Command rstorm-sim runs a topology on the simulated cluster under a
// chosen scheduler and prints throughput, utilization and latency, plus a
// per-component measured-utilization table from the runtime metrics tap.
//
// Usage:
//
//	rstorm-sim -topology topo.json [-cluster cluster.yaml] \
//	           [-scheduler r-storm|default-even|offline-linear] \
//	           [-duration 60s] [-fail schedule] [-replay] \
//	           [-adaptive] [-control-interval 1s] [-memory] [-traffic] \
//	           [-multitenant] [-chaos] [-shards N] \
//	           [-percentiles] [-trace N] [-journal]
//	rstorm-sim -matrix "spec" [-workers N] [-shards N] [-duration 60s] [-window 10s] [-seed 1]
//
// -fail takes a comma-separated chaos schedule (internal/faults): each
// event is [crash:|recover:|slow:]node@time[:factor], the bare node@time
// form being a crash. For example
//
//	-fail node-0-3@20s
//	-fail crash:node-0-3@20s,recover:node-0-3@40s,slow:node-0-5@10s:2.5
//
// crashes node-0-3 at t=20s (first form), or additionally brings it back
// at t=40s and degrades node-0-5's service times by 2.5x from t=10s
// (second form). -replay turns on at-least-once delivery: tuple trees
// failed by a crash or drain re-emit from their spout with bounded
// exponential backoff instead of dropping.
//
// Without -topology it runs the built-in network-bound Linear benchmark.
// With -adaptive the run is driven by the feedback control loop
// (internal/adaptive): measured per-component demands replace the declared
// ones and hotspots trigger incremental rebalances mid-run. With -memory
// the runtime memory model is enabled: resident memory (queued payload
// plus each task's possibly-growing working set) is accounted online, a
// node exceeding its capacity OOM-kills its worst offender, and the
// measured table gains declared-vs-measured memory columns; combined with
// -adaptive, measured memory replaces the declarations during replanning.
// With -traffic the report gains the measured edge-rate matrix and the
// run's inter-node tuple fraction; combined with -adaptive, consolidation
// (imbalance-triggered) rebalances minimize the measured network cost
// instead of ref-node distance. With -multitenant the other flags are set
// aside and the multi-tenant control-plane scenario runs instead: a burst
// of mixed-priority topologies arrives on a loaded cluster, FIFO
// admission starves the high-priority tenant, and the priority-aware
// pass evicts low-priority tenants to admit it (-duration and -seed
// still apply). With -chaos the failover experiment runs the same way:
// a scripted crash/recover schedule against a static schedule and against
// the adaptive loop's failover trigger, reporting recovery ratio and
// time-to-recover.
//
// With -matrix the scenario orchestrator (DESIGN.md §10) runs an
// experiment matrix instead of a single simulation: the spec grammar is
//
//	<ids|all> [× seeds=<n..m|n,m,...>] [× duration=<d,...>] [× window=<d,...>]
//
// e.g. "failover,consolidate × seeds=1..16". Cells run across a bounded
// pool of -workers goroutines (default: all CPUs), each on a fully
// isolated simulator instance; -duration, -window and -seed supply the
// defaults for knobs the spec leaves unset. Output is merged in matrix
// order and is byte-identical for any worker count. -matrix composes
// with no other mode flag.
//
// -shards N selects the simulation kernel (DESIGN.md §11): 0 (the
// default) runs the legacy single-threaded event loop; N >= 1 runs the
// sharded conservative-parallel kernel, partitioning the cluster into
// one lane per rack and advancing lanes on up to N workers in lookahead
// windows. Sharded results are deterministic and identical for every
// N >= 1 — the flag trades wall-clock time only, never output. It
// composes with every mode flag except the single-ordered-loop
// observability paths: -trace and -journal require -shards 0.
//
// The observability flags (DESIGN.md §8) are independent of the mode
// flags and off by default — leaving them off keeps every mode's output
// byte-identical to the uninstrumented simulator. -percentiles turns on
// the zero-allocation latency histograms and prints complete-tree latency
// percentiles (p50/p95/p99/max) plus the per-window p99 timeline; with
// -chaos it adds the failover latency-spike rows to the report. -trace N
// samples every Nth spout emission into a tuple trace and prints the
// reconstructed span trees (per-hop queue wait, service, and network
// time). -journal records the run's control-plane decisions (faults
// injected, OOM kills, triggers, rebalances) and prints them as JSONL.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"rstorm/internal/adaptive"
	"rstorm/internal/cluster"
	"rstorm/internal/core"
	"rstorm/internal/experiments"
	"rstorm/internal/faults"
	"rstorm/internal/orchestra"
	"rstorm/internal/simulator"
	"rstorm/internal/topology"
	"rstorm/internal/trace"
	"rstorm/internal/viz"
	"rstorm/internal/workloads"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rstorm-sim:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("rstorm-sim", flag.ContinueOnError)
	var (
		topoPath    = fs.String("topology", "", "JSON topology spec (default: built-in linear benchmark)")
		clusterPath = fs.String("cluster", "", "YAML cluster description (default: paper's 12-node testbed)")
		schedName   = fs.String("scheduler", "r-storm", "scheduler: r-storm, default-even, or offline-linear")
		duration    = fs.Duration("duration", 60*time.Second, "simulated duration")
		window      = fs.Duration("window", 10*time.Second, "metrics window")
		seed        = fs.Int64("seed", 1, "RNG seed")
		failSpec    = fs.String("fail", "", "chaos schedule: comma-separated [crash:|recover:|slow:]node@time[:factor] events, e.g. node-0-3@20s or crash:node-0-3@20s,recover:node-0-3@40s")
		replayOn    = fs.Bool("replay", false, "at-least-once delivery: replay failed tuple trees from the spout with bounded exponential backoff")
		showAssign  = fs.Bool("assignment", false, "print the task placement")
		adaptiveOn  = fs.Bool("adaptive", false, "close the loop: profile measured demands and rebalance incrementally")
		ctrlIvl     = fs.Duration("control-interval", 0, "adaptive control epoch (default: one metrics window)")
		memoryOn    = fs.Bool("memory", false, "enable the runtime memory model: resident accounting + OOM enforcement (with -adaptive, measured memory replaces declarations)")
		trafficOn   = fs.Bool("traffic", false, "report the measured edge-rate matrix and inter-node tuple fraction (with -adaptive, consolidation rebalances minimize measured network cost)")
		multitenant = fs.Bool("multitenant", false, "run the multi-tenant control-plane scenario: priority-aware admission and eviction vs FIFO on a loaded cluster")
		chaos       = fs.Bool("chaos", false, "run the failover experiment: scripted crash/recover vs the adaptive failover trigger")
		percentiles = fs.Bool("percentiles", false, "latency histograms: print complete-tree latency percentiles and the per-window p99 timeline (with -chaos, add the failover latency-spike rows)")
		traceEvery  = fs.Int("trace", 0, "sample every Nth spout emission into a tuple trace and print the reconstructed span trees (0 = off)")
		journalOn   = fs.Bool("journal", false, "record control-plane decisions (faults, OOM kills, triggers, rebalances) and print them as JSONL")
		matrixSpec  = fs.String("matrix", "", `run an experiment matrix across the worker pool, e.g. "failover,consolidate × seeds=1..16" (see the package comment for the grammar)`)
		workers     = fs.Int("workers", 0, "worker goroutines for -matrix (0 = all CPUs)")
		shards      = fs.Int("shards", 0, "simulation kernel: 0 = legacy single-threaded loop, N >= 1 = sharded conservative-parallel kernel on up to N workers (output identical for every N >= 1)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *traceEvery < 0 {
		return fmt.Errorf("-trace %d is negative", *traceEvery)
	}
	if *shards < 0 {
		return fmt.Errorf("-shards %d is negative", *shards)
	}
	if *shards > 0 && (*traceEvery > 0 || *journalOn) {
		return fmt.Errorf("-trace and -journal require the single-threaded kernel (-shards 0)")
	}
	if *matrixSpec != "" {
		if *topoPath != "" || *multitenant || *chaos || *adaptiveOn || *failSpec != "" ||
			*traceEvery > 0 || *journalOn || *memoryOn || *trafficOn || *replayOn {
			return fmt.Errorf("-matrix runs registered experiments and composes with no other mode flag")
		}
		return runMatrix(w, *matrixSpec, *workers, experiments.Options{
			Duration:      *duration,
			MetricsWindow: *window,
			Seed:          *seed,
			Percentiles:   *percentiles,
			Shards:        *shards,
		})
	}
	if *workers != 0 {
		return fmt.Errorf("-workers only applies to -matrix runs")
	}
	if (*multitenant || *chaos) && (*traceEvery > 0 || *journalOn) {
		// The experiment modes run their own pre-wired simulations;
		// only -percentiles threads through to them.
		return fmt.Errorf("-trace and -journal apply to direct simulation runs, not -multitenant/-chaos (use -percentiles there)")
	}
	if *multitenant {
		return runExperiment(w, "multitenant", *duration, *seed, *percentiles, *shards)
	}
	if *chaos {
		return runExperiment(w, "failover", *duration, *seed, *percentiles, *shards)
	}

	c, err := loadCluster(*clusterPath)
	if err != nil {
		return err
	}
	topo, err := loadTopology(*topoPath)
	if err != nil {
		return err
	}
	sched, err := pickScheduler(*schedName)
	if err != nil {
		return err
	}

	state := core.NewGlobalState(c)
	a, err := sched.Schedule(topo, c, state)
	if err != nil {
		return fmt.Errorf("schedule: %w", err)
	}
	if err := state.Apply(topo, a); err != nil {
		return fmt.Errorf("apply: %w", err)
	}
	if *showAssign {
		fmt.Fprintln(w, a)
	}

	sim, err := simulator.New(c, simulator.Config{
		Duration:          *duration,
		MetricsWindow:     *window,
		Seed:              *seed,
		MemoryModel:       *memoryOn,
		Replay:            *replayOn,
		LatencyHistograms: *percentiles,
		TraceSampleEvery:  *traceEvery,
		Shards:            *shards,
	})
	if err != nil {
		return err
	}
	if err := sim.AddTopology(topo, a); err != nil {
		return err
	}
	var journal *trace.Journal
	if *journalOn {
		journal = trace.NewJournal(0)
		if err := sim.SetJournal(journal); err != nil {
			return err
		}
	}
	if *failSpec != "" {
		schedule, err := faults.ParseSchedule(*failSpec)
		if err != nil {
			return fmt.Errorf("failure spec: %w", err)
		}
		if err := schedule.Apply(sim); err != nil {
			return err
		}
	}

	var (
		result     *simulator.Result
		prof       *adaptive.Profiler
		rebalances []adaptive.RebalanceEvent
	)
	if *adaptiveOn {
		// Replanning always uses the R-Storm distance machinery, whatever
		// scheduler produced the initial placement — so -adaptive also
		// demonstrates the loop repairing a default-even schedule. With
		// -memory the loop additionally measures resident memory and keeps
		// rescheduled tasks under a memory-fill headroom.
		loopCfg := adaptive.LoopConfig{Interval: *ctrlIvl, Journal: journal}
		if *memoryOn {
			loopCfg.Controller.MemHeadroom = 0.8
		}
		// With -traffic the imbalance (consolidation) trigger plans against
		// the measured edge-rate matrix instead of ref-node distance.
		loopCfg.Controller.TrafficObjective = *trafficOn
		loop := adaptive.NewLoop(sim, c, core.NewResourceAwareScheduler(), loopCfg)
		if err := loop.Manage(topo, a); err != nil {
			return err
		}
		prof = loop.Controller().Profiler()
		lr, err := loop.Run()
		if err != nil {
			return err
		}
		result = lr.Result
		rebalances = lr.Events
		a = lr.Assignments[topo.Name()]
	} else {
		prof = adaptive.NewProfiler(adaptive.ProfilerConfig{MetricsWindow: *window})
		if err := sim.SetObserver(prof); err != nil {
			return err
		}
		result, err = sim.Run()
		if err != nil {
			return err
		}
	}
	printResult(w, topo, a, result, c, *memoryOn)
	printFaults(w, sim.Faults(), result, *replayOn)
	if *adaptiveOn {
		printRebalances(w, rebalances, result)
	}
	printMeasured(w, topo, prof, *memoryOn)
	if *trafficOn {
		printTraffic(w, topo, prof, result)
	}
	if *percentiles {
		printPercentiles(w, topo, result)
	}
	if *traceEvery > 0 {
		printTraces(w, sim.Tracer())
	}
	if *journalOn {
		printJournal(w, journal)
	}
	return nil
}

// runMatrix parses a matrix spec, resolves it against the experiment
// registry, and evaluates it across the orchestrator's worker pool. The
// merged output is deterministic: byte-identical for any -workers value.
func runMatrix(w io.Writer, spec string, workers int, base experiments.Options) error {
	parsed, err := orchestra.ParseSpec(spec)
	if err != nil {
		return err
	}
	cells, err := experiments.MatrixCells(parsed, base)
	if err != nil {
		return err
	}
	results, err := orchestra.Run(context.Background(), cells, orchestra.Options{Workers: workers})
	if err != nil {
		return err
	}
	fmt.Fprint(w, results.Render())
	if failed := results.Failed(); failed > 0 {
		return fmt.Errorf("%d of %d matrix cells failed", failed, len(results.Cells))
	}
	return nil
}

// runExperiment runs a registered scenario experiment
// (internal/experiments) and renders its report: "multitenant" (FIFO vs
// priority-aware admission) or "failover" (scripted chaos vs the adaptive
// failover trigger).
func runExperiment(w io.Writer, id string, duration time.Duration, seed int64, percentiles bool, shards int) error {
	e, ok := experiments.ByID(id)
	if !ok {
		return fmt.Errorf("%s experiment not registered", id)
	}
	report, err := e.Run(experiments.Options{
		Duration:    duration,
		Seed:        seed,
		Percentiles: percentiles,
		Shards:      shards,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(w, report.Render())
	return nil
}

func loadCluster(path string) (*cluster.Cluster, error) {
	if path == "" {
		return cluster.Emulab12()
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return cluster.FromYAML(f)
}

func loadTopology(path string) (*topology.Topology, error) {
	if path == "" {
		return workloads.LinearTopology(workloads.NetworkBound)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	spec, err := topology.ParseSpec(f)
	if err != nil {
		return nil, err
	}
	return spec.Build()
}

func pickScheduler(name string) (core.Scheduler, error) {
	switch name {
	case "r-storm":
		return core.NewResourceAwareScheduler(), nil
	case "default-even":
		return core.EvenScheduler{}, nil
	case "offline-linear":
		return core.OfflineLinearScheduler{}, nil
	default:
		return nil, fmt.Errorf("unknown scheduler %q", name)
	}
}

func printResult(w io.Writer, topo *topology.Topology, a *core.Assignment, result *simulator.Result, c *cluster.Cluster, memoryOn bool) {
	tr := result.Topology(topo.Name())
	fmt.Fprintf(w, "topology    %s (%d tasks, %d components)\n",
		topo.Name(), topo.TotalTasks(), len(topo.Components()))
	fmt.Fprintf(w, "scheduler   %s\n", a.Scheduler)
	fmt.Fprintf(w, "placement   %d nodes, %d workers, network cost %.1f\n",
		len(a.NodesUsed()), a.WorkersUsed(), a.NetworkCost(topo, c))
	fmt.Fprintf(w, "throughput  %.0f tuples/%s (mean after warmup)\n",
		tr.MeanSinkThroughput, result.Window)
	fmt.Fprintf(w, "totals      emitted=%d processed=%d delivered=%d dropped=%d\n",
		tr.TuplesEmitted, tr.TuplesProcessed, tr.TuplesDelivered, result.TuplesDropped)
	fmt.Fprintf(w, "latency     %v mean spout-to-sink\n", tr.MeanLatency)
	fmt.Fprintf(w, "cpu util    %.1f%% mean over used nodes\n", result.MeanUtilizationUsed*100)
	if memoryOn {
		fmt.Fprintf(w, "memory      oom-killed=%d tasks (runtime memory model)\n",
			result.TasksOOMKilled)
	}

	fmt.Fprintln(w)
	fmt.Fprint(w, viz.LineChart(
		fmt.Sprintf("sink throughput per %s window", result.Window),
		[]viz.Series{{Name: topo.Name(), Values: tr.SinkSeries}}, 72, 12))

	var names []string
	for comp := range tr.ComponentSeries {
		names = append(names, comp)
	}
	sort.Strings(names)
	fmt.Fprintln(w, "\nper-component processed totals:")
	for _, comp := range names {
		var total float64
		for _, v := range tr.ComponentSeries[comp] {
			total += v
		}
		fmt.Fprintf(w, "  %-16s %12.0f tuples\n", comp, total)
	}
}

// printFaults lists the chaos events the run actually applied, each
// node's total downtime, and — with replay on — the at-least-once
// re-emission count. Silent when nothing was injected and replay is off,
// keeping fault-free output byte-identical.
func printFaults(w io.Writer, recs []simulator.FaultRecord, result *simulator.Result, replayOn bool) {
	if len(recs) > 0 {
		fmt.Fprintln(w, "\nfaults applied:")
		for _, fr := range recs {
			fmt.Fprintf(w, "  t=%-8v %s %s\n", fr.At, fr.Kind, fr.Node)
		}
		var nodes []cluster.NodeID
		for id := range result.NodeDowntime {
			nodes = append(nodes, id)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		for _, id := range nodes {
			fmt.Fprintf(w, "  downtime %s: %v\n", id, result.NodeDowntime[id])
		}
	}
	if replayOn {
		fmt.Fprintf(w, "\nreplay      %d re-emissions of failed tuple trees (at-least-once)\n",
			result.TuplesReplayed)
	}
}

// printRebalances lists the adaptive loop's mid-run migrations.
func printRebalances(w io.Writer, events []adaptive.RebalanceEvent, result *simulator.Result) {
	fmt.Fprintln(w, "\nadaptive rebalances:")
	if len(events) == 0 {
		fmt.Fprintln(w, "  none (placement already matched measured demands)")
		return
	}
	for _, e := range events {
		fmt.Fprintf(w, "  t=%-8v %-10s trigger=%-10s moved %d tasks\n",
			e.At, e.Topology, e.Trigger, e.Moves)
	}
	fmt.Fprintf(w, "  tuples failed by migration: %d\n", result.TuplesMigrated)
}

// printTraffic renders the measured edge-rate matrix — the traffic the
// network-distance heuristic is a proxy for — and the run's inter-node
// tuple fraction (the quantity a traffic-aware placement minimizes).
func printTraffic(w io.Writer, topo *topology.Topology, prof *adaptive.Profiler, result *simulator.Result) {
	edges := prof.EdgeStats(topo.Name())
	if len(edges) == 0 {
		return
	}
	fmt.Fprintf(w, "\nmeasured edge traffic (EWMA over %d windows):\n", prof.Windows())
	fmt.Fprintf(w, "  %-16s %-16s %10s %12s %9s\n",
		"from", "to", "rate/s", "tuples", "remote")
	for _, e := range edges {
		fmt.Fprintf(w, "  %-16s %-16s %10.1f %12d %8.1f%%\n",
			e.From, e.To, e.RatePerSec, e.Tuples, e.InterNodeFraction()*100)
	}
	if tr := result.Topology(topo.Name()); tr != nil {
		fmt.Fprintf(w, "  inter-node tuple fraction: %.1f%% (%d of %d deliveries crossed nodes)\n",
			tr.InterNodeFraction()*100, tr.TuplesSentRemote, tr.TuplesSent)
	}
}

// printPercentiles renders the latency histograms' roll-up: the whole-run
// complete-tree percentiles per topology plus the per-window p99 timeline
// (the series that exposes a failover latency spike and its recovery).
func printPercentiles(w io.Writer, topo *topology.Topology, result *simulator.Result) {
	tr := result.Topology(topo.Name())
	if tr == nil {
		return
	}
	fmt.Fprintln(w, "\nlatency percentiles (complete-tree, histogram-quantized):")
	fmt.Fprintf(w, "  %-16s %10s %10s %10s %10s\n", "topology", "p50", "p95", "p99", "max")
	fmt.Fprintf(w, "  %-16s %10v %10v %10v %10v\n",
		tr.Name, tr.LatencyP50, tr.LatencyP95, tr.LatencyP99, tr.LatencyMax)
	if len(tr.LatencyP99Series) > 0 {
		fmt.Fprintln(w)
		fmt.Fprint(w, viz.LineChart(
			fmt.Sprintf("p99 latency (ms) per %s window", result.Window),
			[]viz.Series{{Name: tr.Name, Values: tr.LatencyP99Series}}, 72, 12))
	}
}

// printTracesMax caps how many reconstructed span trees the CLI renders;
// the total is always reported.
const printTracesMax = 8

// printTraces renders the sampled tuple traces as indented span trees.
func printTraces(w io.Writer, tracer *trace.Tracer) {
	trees := tracer.Trees()
	fmt.Fprintf(w, "\ntuple traces: %d spans in %d trees (deterministic sampling)\n",
		len(tracer.Spans()), len(trees))
	shown := trees
	if len(shown) > printTracesMax {
		shown = shown[:printTracesMax]
	}
	fmt.Fprint(w, trace.RenderTrees(shown))
	if len(trees) > printTracesMax {
		fmt.Fprintf(w, "  ... %d more trees not shown\n", len(trees)-printTracesMax)
	}
}

// printJournal dumps the decision journal as JSONL — the same exposition
// the StatisticServer's /journal route serves.
func printJournal(w io.Writer, journal *trace.Journal) {
	fmt.Fprintf(w, "\ndecision journal (%d events, JSONL):\n", journal.Len())
	_ = journal.WriteJSONL(w)
}

// printMeasured renders the metrics tap's per-component summary: declared
// vs measured CPU demand, utilization, queue pressure and NIC egress —
// plus declared vs measured resident memory when the runtime memory model
// is on (without it memory is unmeasured and the columns would be noise).
func printMeasured(w io.Writer, topo *topology.Topology, prof *adaptive.Profiler, memoryOn bool) {
	stats := prof.Stats(topo.Name())
	if len(stats) == 0 {
		return
	}
	fmt.Fprintf(w, "\nmeasured per-component demand (EWMA over %d windows):\n", prof.Windows())
	fmt.Fprintf(w, "  %-16s %6s %9s %9s %7s %7s %11s %10s",
		"component", "tasks", "decl-cpu", "meas-cpu", "util", "queue", "egress-mbps", "overflows")
	if memoryOn {
		fmt.Fprintf(w, " %9s %9s", "decl-mem", "meas-mem")
	}
	fmt.Fprintln(w)
	for _, st := range stats {
		comp := topo.Component(st.Component)
		if comp == nil {
			continue
		}
		fmt.Fprintf(w, "  %-16s %6d %9.1f %9.1f %6.1f%% %6.1f%% %11.2f %10d",
			st.Component, st.Tasks, comp.CPULoad, st.CPUPoints,
			st.Utilization*100, st.QueueFill*100, st.EgressMbps, st.Overflows)
		if memoryOn {
			fmt.Fprintf(w, " %9.1f %9.1f", comp.MemoryLoad, st.MemResidentMB)
		}
		fmt.Fprintln(w)
	}
}
