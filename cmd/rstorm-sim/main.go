// Command rstorm-sim runs a topology on the simulated cluster under a
// chosen scheduler and prints throughput, utilization and latency.
//
// Usage:
//
//	rstorm-sim -topology topo.json [-cluster cluster.yaml] \
//	           [-scheduler r-storm|default-even|offline-linear] \
//	           [-duration 60s] [-fail node-0-3@20s]
//
// Without -topology it runs the built-in network-bound Linear benchmark.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"rstorm/internal/cluster"
	"rstorm/internal/core"
	"rstorm/internal/simulator"
	"rstorm/internal/topology"
	"rstorm/internal/viz"
	"rstorm/internal/workloads"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rstorm-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rstorm-sim", flag.ContinueOnError)
	var (
		topoPath    = fs.String("topology", "", "JSON topology spec (default: built-in linear benchmark)")
		clusterPath = fs.String("cluster", "", "YAML cluster description (default: paper's 12-node testbed)")
		schedName   = fs.String("scheduler", "r-storm", "scheduler: r-storm, default-even, or offline-linear")
		duration    = fs.Duration("duration", 60*time.Second, "simulated duration")
		window      = fs.Duration("window", 10*time.Second, "metrics window")
		seed        = fs.Int64("seed", 1, "RNG seed")
		failSpec    = fs.String("fail", "", "inject a node failure, e.g. node-0-3@20s")
		showAssign  = fs.Bool("assignment", false, "print the task placement")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	c, err := loadCluster(*clusterPath)
	if err != nil {
		return err
	}
	topo, err := loadTopology(*topoPath)
	if err != nil {
		return err
	}
	sched, err := pickScheduler(*schedName)
	if err != nil {
		return err
	}

	state := core.NewGlobalState(c)
	a, err := sched.Schedule(topo, c, state)
	if err != nil {
		return fmt.Errorf("schedule: %w", err)
	}
	if err := state.Apply(topo, a); err != nil {
		return fmt.Errorf("apply: %w", err)
	}
	if *showAssign {
		fmt.Println(a)
	}

	sim, err := simulator.New(c, simulator.Config{
		Duration:      *duration,
		MetricsWindow: *window,
		Seed:          *seed,
	})
	if err != nil {
		return err
	}
	if err := sim.AddTopology(topo, a); err != nil {
		return err
	}
	if *failSpec != "" {
		node, at, err := parseFailure(*failSpec)
		if err != nil {
			return err
		}
		if err := sim.FailNodeAt(node, at); err != nil {
			return err
		}
	}
	result, err := sim.Run()
	if err != nil {
		return err
	}
	printResult(topo, a, result, c)
	return nil
}

func loadCluster(path string) (*cluster.Cluster, error) {
	if path == "" {
		return cluster.Emulab12()
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return cluster.FromYAML(f)
}

func loadTopology(path string) (*topology.Topology, error) {
	if path == "" {
		return workloads.LinearTopology(workloads.NetworkBound)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	spec, err := topology.ParseSpec(f)
	if err != nil {
		return nil, err
	}
	return spec.Build()
}

func pickScheduler(name string) (core.Scheduler, error) {
	switch name {
	case "r-storm":
		return core.NewResourceAwareScheduler(), nil
	case "default-even":
		return core.EvenScheduler{}, nil
	case "offline-linear":
		return core.OfflineLinearScheduler{}, nil
	default:
		return nil, fmt.Errorf("unknown scheduler %q", name)
	}
}

func parseFailure(spec string) (cluster.NodeID, time.Duration, error) {
	parts := strings.SplitN(spec, "@", 2)
	if len(parts) != 2 {
		return "", 0, fmt.Errorf("failure spec %q, want node@time (e.g. node-0-3@20s)", spec)
	}
	at, err := time.ParseDuration(parts[1])
	if err != nil {
		return "", 0, fmt.Errorf("failure time: %w", err)
	}
	return cluster.NodeID(parts[0]), at, nil
}

func printResult(topo *topology.Topology, a *core.Assignment, result *simulator.Result, c *cluster.Cluster) {
	tr := result.Topology(topo.Name())
	fmt.Printf("topology    %s (%d tasks, %d components)\n",
		topo.Name(), topo.TotalTasks(), len(topo.Components()))
	fmt.Printf("scheduler   %s\n", a.Scheduler)
	fmt.Printf("placement   %d nodes, %d workers, network cost %.1f\n",
		len(a.NodesUsed()), a.WorkersUsed(), a.NetworkCost(topo, c))
	fmt.Printf("throughput  %.0f tuples/%s (mean after warmup)\n",
		tr.MeanSinkThroughput, result.Window)
	fmt.Printf("totals      emitted=%d processed=%d delivered=%d dropped=%d\n",
		tr.TuplesEmitted, tr.TuplesProcessed, tr.TuplesDelivered, result.TuplesDropped)
	fmt.Printf("latency     %v mean spout-to-sink\n", tr.MeanLatency)
	fmt.Printf("cpu util    %.1f%% mean over used nodes\n", result.MeanUtilizationUsed*100)

	fmt.Println()
	fmt.Print(viz.LineChart(
		fmt.Sprintf("sink throughput per %s window", result.Window),
		[]viz.Series{{Name: topo.Name(), Values: tr.SinkSeries}}, 72, 12))

	var names []string
	for comp := range tr.ComponentSeries {
		names = append(names, comp)
	}
	sort.Strings(names)
	fmt.Println("\nper-component processed totals:")
	for _, comp := range names {
		var total float64
		for _, v := range tr.ComponentSeries[comp] {
			total += v
		}
		fmt.Printf("  %-16s %12.0f tuples\n", comp, total)
	}
}
