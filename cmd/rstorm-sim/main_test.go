package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rstorm/internal/faults"
)

// TestFailScheduleRoundTrip pins the -fail grammar: the legacy node@time
// crash form, the spelled-out multi-event schedule, and the slow form all
// parse, and a parsed schedule renders back to parseable syntax.
func TestFailScheduleRoundTrip(t *testing.T) {
	legacy, err := faults.ParseSchedule("node-0-3@20s")
	if err != nil {
		t.Fatalf("legacy form: %v", err)
	}
	if len(legacy) != 1 || legacy[0].Kind != faults.Crash ||
		string(legacy[0].Node) != "node-0-3" || legacy[0].At != 20*time.Second {
		t.Errorf("legacy form parsed as %+v", legacy)
	}

	spec := "crash:node-0-3@20s,recover:node-0-3@40s,slow:node-0-5@10s:2.5"
	sched, err := faults.ParseSchedule(spec)
	if err != nil {
		t.Fatalf("multi-event form: %v", err)
	}
	if len(sched) != 3 {
		t.Fatalf("parsed %d events, want 3", len(sched))
	}
	if got := sched.String(); got != spec {
		t.Errorf("round-trip = %q, want %q", got, spec)
	}
	reparsed, err := faults.ParseSchedule(sched.String())
	if err != nil || len(reparsed) != 3 {
		t.Errorf("re-parse: %v, %+v", err, reparsed)
	}

	for _, bad := range []string{"node-0-3", "n@xyz", "slow:n@1s", "slow:n@1s:0.5"} {
		if _, err := faults.ParseSchedule(bad); err == nil {
			t.Errorf("bad spec %q accepted", bad)
		}
	}
}

func TestPickScheduler(t *testing.T) {
	for _, name := range []string{"r-storm", "default-even", "offline-linear"} {
		s, err := pickScheduler(name)
		if err != nil || s.Name() != name {
			t.Errorf("pickScheduler(%s) = %v, %v", name, s, err)
		}
	}
	if _, err := pickScheduler("quantum"); err == nil {
		t.Error("unknown scheduler accepted")
	}
}

func TestLoadDefaults(t *testing.T) {
	c, err := loadCluster("")
	if err != nil || c.Size() != 12 {
		t.Fatalf("default cluster: %v, %v", c, err)
	}
	topo, err := loadTopology("")
	if err != nil || topo.TotalTasks() == 0 {
		t.Fatalf("default topology: %v, %v", topo, err)
	}
	if _, err := loadCluster("/does/not/exist.yaml"); err == nil {
		t.Error("missing cluster file accepted")
	}
	if _, err := loadTopology("/does/not/exist.json"); err == nil {
		t.Error("missing topology file accepted")
	}
}

func TestLoadTopologyFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "topo.json")
	spec := `{
	  "name": "filetest",
	  "components": [
	    {"name": "s", "kind": "spout", "parallelism": 2, "cpuLoad": 10, "memoryLoadMb": 128},
	    {"name": "b", "kind": "bolt", "parallelism": 2, "cpuLoad": 10, "memoryLoadMb": 128,
	     "inputs": [{"from": "s"}]}
	  ]
	}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	topo, err := loadTopology(path)
	if err != nil {
		t.Fatalf("loadTopology: %v", err)
	}
	if topo.Name() != "filetest" || topo.TotalTasks() != 4 {
		t.Errorf("loaded %q with %d tasks", topo.Name(), topo.TotalTasks())
	}
}

func TestRunEndToEnd(t *testing.T) {
	// Exercise the whole command with a tiny duration and an injected
	// failure; it must complete without error.
	var out bytes.Buffer
	err := run(&out, []string{
		"-duration", "2s", "-window", "1s",
		"-scheduler", "r-storm",
		"-fail", "node-0-0@1s",
		"-assignment",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "throughput") {
		t.Errorf("missing result summary:\n%s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, []string{"-scheduler", "nope", "-duration", "1s"}); err == nil {
		t.Error("bad scheduler accepted")
	}
	if err := run(&out, []string{"-fail", "garbage", "-duration", "2s", "-window", "1s"}); err == nil ||
		!strings.Contains(err.Error(), "failure spec") {
		t.Errorf("bad failure spec err = %v", err)
	}
}

// TestRunPrintsMeasuredTable: every run (adaptive or not) must report the
// metrics tap's per-component measured-demand table.
func TestRunPrintsMeasuredTable(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, []string{"-duration", "2s", "-window", "500ms"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "measured per-component demand") {
		t.Fatalf("missing measured table:\n%s", s)
	}
	for _, col := range []string{"decl-cpu", "meas-cpu", "util", "egress-mbps", "overflows"} {
		if !strings.Contains(s, col) {
			t.Errorf("measured table missing column %q", col)
		}
	}
	// The built-in linear benchmark's components must all appear.
	for _, comp := range []string{"spout", "bolt1", "bolt2", "bolt3"} {
		if !strings.Contains(s, comp) {
			t.Errorf("measured table missing component %q", comp)
		}
	}
}

// TestRunMemoryModel drives the runtime memory model from the CLI: a
// topology whose true working set (memMb) dwarfs its declared memory must
// OOM-thrash on the packed static placement, and the measured table must
// grow declared-vs-measured memory columns. With -adaptive on the same
// spec the loop must instead migrate off the filling node, take no OOM
// kills, and report a memory-triggered rebalance.
func TestRunMemoryModel(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "memliar.json")
	spec := `{
	  "name": "memliar",
	  "components": [
	    {"name": "s", "kind": "spout", "parallelism": 2, "cpuLoad": 10, "memoryLoadMb": 128,
	     "profile": {"cpuPerTupleUs": 500, "tupleBytes": 512}},
	    {"name": "cache", "kind": "bolt", "parallelism": 6, "cpuLoad": 8, "memoryLoadMb": 128,
	     "profile": {"cpuPerTupleUs": 100, "tupleBytes": 512, "memMb": 1408, "memGrowTuples": 20000},
	     "inputs": [{"from": "s"}]},
	    {"name": "z", "kind": "bolt", "parallelism": 2, "cpuLoad": 10, "memoryLoadMb": 128,
	     "profile": {"cpuPerTupleUs": 100, "tupleBytes": 512},
	     "inputs": [{"from": "cache"}]}
	  ]
	}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}

	var static bytes.Buffer
	err := run(&static, []string{
		"-topology", path, "-memory",
		"-duration", "20s", "-window", "500ms",
	})
	if err != nil {
		t.Fatalf("run -memory: %v", err)
	}
	s := static.String()
	if !strings.Contains(s, "oom-killed=5 tasks") {
		t.Errorf("static run should OOM-thrash the packed cache stage:\n%s", s)
	}
	for _, col := range []string{"decl-mem", "meas-mem"} {
		if !strings.Contains(s, col) {
			t.Errorf("measured table missing memory column %q", col)
		}
	}

	var adapt bytes.Buffer
	err = run(&adapt, []string{
		"-topology", path, "-memory", "-adaptive",
		"-duration", "20s", "-window", "500ms",
	})
	if err != nil {
		t.Fatalf("run -memory -adaptive: %v", err)
	}
	s = adapt.String()
	if !strings.Contains(s, "oom-killed=0 tasks") {
		t.Errorf("adaptive run should migrate before any OOM kill:\n%s", s)
	}
	if !strings.Contains(s, "trigger=memory") {
		t.Errorf("adaptive loop never fired the memory trigger:\n%s", s)
	}
}

// TestRunAdaptiveMode drives the feedback loop from the CLI on a topology
// spec whose declarations undersell a truly heavy stage, and expects the
// loop to report its rebalances.
func TestRunAdaptiveMode(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "liar.json")
	spec := `{
	  "name": "liar",
	  "components": [
	    {"name": "s", "kind": "spout", "parallelism": 2, "cpuLoad": 10, "memoryLoadMb": 256,
	     "profile": {"cpuPerTupleUs": 100, "tupleBytes": 128}},
	    {"name": "work", "kind": "bolt", "parallelism": 6, "cpuLoad": 10, "memoryLoadMb": 256,
	     "profile": {"cpuPerTupleUs": 2000, "tupleBytes": 128, "cpuPoints": 80},
	     "inputs": [{"from": "s"}]},
	    {"name": "z", "kind": "bolt", "parallelism": 2, "cpuLoad": 10, "memoryLoadMb": 256,
	     "profile": {"cpuPerTupleUs": 100, "tupleBytes": 128},
	     "inputs": [{"from": "work"}]}
	  ]
	}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run(&out, []string{
		"-topology", path,
		"-adaptive",
		"-duration", "8s", "-window", "500ms",
	})
	if err != nil {
		t.Fatalf("run -adaptive: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "adaptive rebalances:") {
		t.Fatalf("missing rebalance report:\n%s", s)
	}
	if !strings.Contains(s, "trigger=hotspot") {
		t.Errorf("adaptive loop never triggered on the mis-declared stage:\n%s", s)
	}
	if !strings.Contains(s, "measured per-component demand") {
		t.Error("adaptive run missing measured table")
	}
}

// TestRunTrafficMode: -traffic must report the measured edge-rate matrix
// and the run's inter-node tuple fraction; combined with -adaptive on a
// cold, CPU-overdeclared chain it must consolidate (imbalance-triggered
// moves) and end with a lower inter-node fraction than the static run.
func TestRunTrafficMode(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "chatty.json")
	// A scaled-down ChattyChain: declared heavy (spread one task per
	// node), truly idle and latency-bound, with fat tuples on every edge.
	// Four stages two tasks wide: the CPU lie spreads the chain across
	// nodes *asymmetrically* (a 3-task-per-node spill pattern), which is
	// what gives the traffic objective single-task moves to find. (A
	// 2-node symmetric split is a fixed point: every task's traffic pulls
	// equally both ways.)
	spec := `{
	  "name": "chatty",
	  "components": [
	    {"name": "src", "kind": "spout", "parallelism": 2, "cpuLoad": 85, "memoryLoadMb": 64,
	     "profile": {"cpuPerTupleUs": 50, "tupleBytes": 8192, "cpuPoints": 8}},
	    {"name": "mid", "kind": "bolt", "parallelism": 2, "cpuLoad": 85, "memoryLoadMb": 64,
	     "profile": {"cpuPerTupleUs": 50, "tupleBytes": 8192, "cpuPoints": 8},
	     "inputs": [{"from": "src"}]},
	    {"name": "fold", "kind": "bolt", "parallelism": 2, "cpuLoad": 85, "memoryLoadMb": 64,
	     "profile": {"cpuPerTupleUs": 50, "tupleBytes": 8192, "cpuPoints": 8},
	     "inputs": [{"from": "mid"}]},
	    {"name": "out", "kind": "bolt", "parallelism": 2, "cpuLoad": 85, "memoryLoadMb": 64,
	     "profile": {"cpuPerTupleUs": 50, "tupleBytes": 8192, "cpuPoints": 8},
	     "inputs": [{"from": "fold"}]}
	  ]
	}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	var static bytes.Buffer
	err := run(&static, []string{
		"-topology", path, "-traffic",
		"-duration", "4s", "-window", "500ms",
	})
	if err != nil {
		t.Fatalf("run -traffic: %v", err)
	}
	s := static.String()
	if !strings.Contains(s, "measured edge traffic") {
		t.Fatalf("missing edge traffic table:\n%s", s)
	}
	for _, want := range []string{"src", "mid", "out", "inter-node tuple fraction:"} {
		if !strings.Contains(s, want) {
			t.Errorf("traffic report missing %q:\n%s", want, s)
		}
	}

	var adapt bytes.Buffer
	err = run(&adapt, []string{
		"-topology", path, "-traffic", "-adaptive",
		"-duration", "4s", "-window", "500ms",
	})
	if err != nil {
		t.Fatalf("run -traffic -adaptive: %v", err)
	}
	a := adapt.String()
	if !strings.Contains(a, "trigger=imbalance") {
		t.Errorf("adaptive -traffic never consolidated the cold chain:\n%s", a)
	}
	frac := func(out string) float64 {
		i := strings.Index(out, "inter-node tuple fraction:")
		if i < 0 {
			t.Fatalf("no fraction line:\n%s", out)
		}
		var f float64
		if _, err := fmt.Sscanf(out[i:], "inter-node tuple fraction: %f%%", &f); err != nil {
			t.Fatalf("unparsable fraction line: %v\n%s", err, out[i:])
		}
		return f
	}
	if sf, af := frac(s), frac(a); af >= sf {
		t.Errorf("adaptive inter-node fraction %.1f%% not below static %.1f%%", af, sf)
	}
}

// TestRunChaosSchedule drives a full crash/recover/slow schedule with
// replay through the CLI and expects the fault log, downtime, and replay
// lines in the report.
func TestRunChaosSchedule(t *testing.T) {
	var out bytes.Buffer
	err := run(&out, []string{
		"-duration", "4s", "-window", "500ms", "-replay",
		"-fail", "crash:node-0-0@1s,recover:node-0-0@2s,slow:node-0-1@500ms:2.0",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, want := range []string{
		"faults applied:",
		"crash node-0-0",
		"recover node-0-0",
		"slow node-0-1",
		"downtime node-0-0: 1s",
		"replay",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("chaos report missing %q:\n%s", want, s)
		}
	}
}

// TestRunChaosMode runs the failover experiment end to end from the CLI.
func TestRunChaosMode(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, []string{"-chaos", "-duration", "6s"}); err != nil {
		t.Fatalf("run -chaos: %v", err)
	}
	s := out.String()
	for _, want := range []string{
		"failover",
		"time-to-recover",
		"static (no failover)",
		"adaptive (failover)",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("chaos report missing %q:\n%s", want, s)
		}
	}
}

// TestRunMatrixMode drives -matrix end to end: a seed matrix over two
// experiments renders every cell under its key, and the merged output is
// byte-identical whether one worker or four run the pool.
func TestRunMatrixMode(t *testing.T) {
	args := func(workers string) []string {
		return []string{
			"-matrix", "fig9b,consolidate x seeds=1..2",
			"-workers", workers,
			"-duration", "6s", "-window", "2s",
		}
	}
	var serial bytes.Buffer
	if err := run(&serial, args("1")); err != nil {
		t.Fatalf("run -matrix -workers 1: %v", err)
	}
	s := serial.String()
	for _, want := range []string{
		"--- cell fig9b seed=1 ---",
		"--- cell fig9b seed=2 ---",
		"--- cell consolidate seed=1 ---",
		"--- cell consolidate seed=2 ---",
		"matrix: 4 cells, 0 failed",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("matrix output missing %q:\n%s", want, s)
		}
	}
	var pooled bytes.Buffer
	if err := run(&pooled, args("4")); err != nil {
		t.Fatalf("run -matrix -workers 4: %v", err)
	}
	if pooled.String() != s {
		t.Errorf("-workers 4 output diverged from -workers 1:\n--- got ---\n%s\n--- want ---\n%s",
			pooled.String(), s)
	}
}

// TestRunMatrixRejectsBadSpecs: the matrix flag surface fails cleanly on
// grammar errors, unknown experiments, flag composition, and stray
// -workers.
func TestRunMatrixRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-matrix", "fig9b × seeds="}, "matrix spec"},
		{[]string{"-matrix", "fig99 × seeds=1"}, `unknown experiment "fig99"`},
		{[]string{"-matrix", "fig9b", "-adaptive"}, "composes with no other mode flag"},
		{[]string{"-matrix", "fig9b", "-chaos"}, "composes with no other mode flag"},
		{[]string{"-matrix", "fig9b", "-fail", "node-0-0@1s"}, "composes with no other mode flag"},
		{[]string{"-workers", "4", "-duration", "1s"}, "-workers only applies to -matrix"},
	}
	for _, c := range cases {
		err := run(&bytes.Buffer{}, c.args)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("run(%v) err = %v, want %q", c.args, err, c.want)
		}
	}
}

func TestRunMultiTenantMode(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, []string{"-multitenant", "-duration", "6s"}); err != nil {
		t.Fatalf("run -multitenant: %v", err)
	}
	s := out.String()
	for _, want := range []string{
		"multitenant",
		"priority-aware admission",
		"evictions applied",
		"prod priority (evicting)",
		"prod fifo (starved)",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("multitenant report missing %q:\n%s", want, s)
		}
	}
	// A duration too short for the scenario's epochs is a clean error.
	if err := run(&bytes.Buffer{}, []string{"-multitenant", "-duration", "1s"}); err == nil {
		t.Error("1s multitenant run accepted")
	}
}

// TestRunShardedMode pins the -shards contract end to end: the sharded
// kernel's CLI output is byte-identical for every worker count, composes
// with the mode flags (-chaos shown here), and the single-ordered-loop
// observability paths reject it.
func TestRunShardedMode(t *testing.T) {
	direct := func(shards string) string {
		var out bytes.Buffer
		if err := run(&out, []string{"-shards", shards, "-duration", "6s", "-window", "2s"}); err != nil {
			t.Fatalf("run -shards %s: %v", shards, err)
		}
		return out.String()
	}
	base := direct("1")
	if !strings.Contains(base, "throughput") {
		t.Fatalf("sharded run produced no report:\n%s", base)
	}
	for _, shards := range []string{"2", "4"} {
		if got := direct(shards); got != base {
			t.Errorf("-shards %s output diverged from -shards 1:\n--- got ---\n%s\n--- want ---\n%s",
				shards, got, base)
		}
	}

	chaos := func(shards string) string {
		var out bytes.Buffer
		args := []string{"-chaos", "-duration", "6s"}
		if shards != "" {
			args = append(args, "-shards", shards)
		}
		if err := run(&out, args); err != nil {
			t.Fatalf("run -chaos -shards %q: %v", shards, err)
		}
		return out.String()
	}
	chaosBase := chaos("1")
	if !strings.Contains(chaosBase, "failover") {
		t.Fatalf("chaos run produced no report:\n%s", chaosBase)
	}
	if got := chaos("4"); got != chaosBase {
		t.Errorf("-chaos -shards 4 output diverged from -shards 1")
	}

	for _, c := range []struct {
		args []string
		want string
	}{
		{[]string{"-shards", "-1"}, "-shards -1 is negative"},
		{[]string{"-shards", "2", "-trace", "10"}, "single-threaded kernel"},
		{[]string{"-shards", "2", "-journal"}, "single-threaded kernel"},
	} {
		err := run(&bytes.Buffer{}, c.args)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("run(%v) err = %v, want %q", c.args, err, c.want)
		}
	}
}
