package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParseFailure(t *testing.T) {
	node, at, err := parseFailure("node-0-3@20s")
	if err != nil {
		t.Fatalf("parseFailure: %v", err)
	}
	if string(node) != "node-0-3" || at != 20*time.Second {
		t.Errorf("parsed %s @ %v", node, at)
	}
	if _, _, err := parseFailure("node-0-3"); err == nil {
		t.Error("missing @time accepted")
	}
	if _, _, err := parseFailure("n@xyz"); err == nil {
		t.Error("bad duration accepted")
	}
}

func TestPickScheduler(t *testing.T) {
	for _, name := range []string{"r-storm", "default-even", "offline-linear"} {
		s, err := pickScheduler(name)
		if err != nil || s.Name() != name {
			t.Errorf("pickScheduler(%s) = %v, %v", name, s, err)
		}
	}
	if _, err := pickScheduler("quantum"); err == nil {
		t.Error("unknown scheduler accepted")
	}
}

func TestLoadDefaults(t *testing.T) {
	c, err := loadCluster("")
	if err != nil || c.Size() != 12 {
		t.Fatalf("default cluster: %v, %v", c, err)
	}
	topo, err := loadTopology("")
	if err != nil || topo.TotalTasks() == 0 {
		t.Fatalf("default topology: %v, %v", topo, err)
	}
	if _, err := loadCluster("/does/not/exist.yaml"); err == nil {
		t.Error("missing cluster file accepted")
	}
	if _, err := loadTopology("/does/not/exist.json"); err == nil {
		t.Error("missing topology file accepted")
	}
}

func TestLoadTopologyFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "topo.json")
	spec := `{
	  "name": "filetest",
	  "components": [
	    {"name": "s", "kind": "spout", "parallelism": 2, "cpuLoad": 10, "memoryLoadMb": 128},
	    {"name": "b", "kind": "bolt", "parallelism": 2, "cpuLoad": 10, "memoryLoadMb": 128,
	     "inputs": [{"from": "s"}]}
	  ]
	}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	topo, err := loadTopology(path)
	if err != nil {
		t.Fatalf("loadTopology: %v", err)
	}
	if topo.Name() != "filetest" || topo.TotalTasks() != 4 {
		t.Errorf("loaded %q with %d tasks", topo.Name(), topo.TotalTasks())
	}
}

func TestRunEndToEnd(t *testing.T) {
	// Exercise the whole command with a tiny duration and an injected
	// failure; it must complete without error.
	err := run([]string{
		"-duration", "2s", "-window", "1s",
		"-scheduler", "r-storm",
		"-fail", "node-0-0@1s",
		"-assignment",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-scheduler", "nope", "-duration", "1s"}); err == nil {
		t.Error("bad scheduler accepted")
	}
	if err := run([]string{"-fail", "garbage", "-duration", "2s", "-window", "1s"}); err == nil ||
		!strings.Contains(err.Error(), "failure spec") {
		t.Errorf("bad failure spec err = %v", err)
	}
}
