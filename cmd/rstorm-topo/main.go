// Command rstorm-topo inspects topologies and the schedules different
// schedulers produce for them, without running a simulation.
//
// Usage:
//
//	rstorm-topo -builtin linear-network          # describe + schedule
//	rstorm-topo -topology topo.json -compare     # all schedulers side by side
//	rstorm-topo -builtin pageload -export        # print the JSON spec
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rstorm/internal/cluster"
	"rstorm/internal/core"
	"rstorm/internal/topology"
	"rstorm/internal/workloads"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rstorm-topo:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rstorm-topo", flag.ContinueOnError)
	var (
		topoPath    = fs.String("topology", "", "JSON topology spec")
		builtin     = fs.String("builtin", "", "built-in topology: linear-network, linear-compute, diamond-network, diamond-compute, star-network, star-compute, pageload, processing")
		clusterPath = fs.String("cluster", "", "YAML cluster description (default: 12-node testbed)")
		compare     = fs.Bool("compare", false, "compare all schedulers")
		export      = fs.Bool("export", false, "print the topology's JSON spec and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	topo, err := loadTopology(*topoPath, *builtin)
	if err != nil {
		return err
	}
	if *export {
		return topology.SpecOf(topo).Encode(os.Stdout)
	}

	c, err := loadCluster(*clusterPath)
	if err != nil {
		return err
	}

	describe(topo)
	schedulers := []core.Scheduler{core.NewResourceAwareScheduler()}
	if *compare {
		schedulers = []core.Scheduler{
			core.NewResourceAwareScheduler(),
			core.EvenScheduler{},
			core.OfflineLinearScheduler{},
		}
	}
	for _, sched := range schedulers {
		fmt.Printf("\n--- scheduler %s\n", sched.Name())
		a, err := sched.Schedule(topo, c, core.NewGlobalState(c))
		if err != nil {
			fmt.Printf("    scheduling failed: %v\n", err)
			continue
		}
		fmt.Printf("    nodes used    %d\n", len(a.NodesUsed()))
		fmt.Printf("    workers used  %d\n", a.WorkersUsed())
		fmt.Printf("    network cost  %.1f (expected distance per hand-off, lower is better)\n",
			a.NetworkCost(topo, c))
		fmt.Printf("    cross pairs   %d of %d adjacent task pairs on different nodes\n",
			a.CrossNodePairs(topo), totalPairs(topo))
		for _, node := range a.NodesUsed() {
			used := a.UsedPerNode(topo)[node]
			flag := ""
			if used.CPU > c.Node(node).Spec.Capacity.CPU {
				flag = "  << CPU OVERCOMMITTED"
			}
			fmt.Printf("    %-12s tasks=%v cpu=%.0f mem=%.0fMB%s\n",
				node, a.TasksOnNode(node), used.CPU, used.MemoryMB, flag)
		}
	}
	return nil
}

func describe(topo *topology.Topology) {
	fmt.Printf("topology %q: %d components, %d tasks, total demand %v\n",
		topo.Name(), len(topo.Components()), topo.TotalTasks(), topo.TotalDemand())
	fmt.Printf("BFS order: %s\n", strings.Join(topo.BFSOrder(), " -> "))
	for _, comp := range topo.Components() {
		fmt.Printf("  %-14s %-5s par=%-3d cpu=%-5.0f mem=%-6.0fMB",
			comp.Name, comp.Kind, comp.Parallelism, comp.CPULoad, comp.MemoryLoad)
		if in := topo.Incoming(comp.Name); len(in) > 0 {
			var srcs []string
			for _, s := range in {
				srcs = append(srcs, fmt.Sprintf("%s(%s)", s.From, s.Grouping))
			}
			fmt.Printf("  <- %s", strings.Join(srcs, ", "))
		}
		fmt.Println()
	}
}

func totalPairs(topo *topology.Topology) int {
	total := 0
	for _, s := range topo.Streams() {
		total += topo.Component(s.From).Parallelism * topo.Component(s.To).Parallelism
	}
	return total
}

func loadTopology(path, builtin string) (*topology.Topology, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		spec, err := topology.ParseSpec(f)
		if err != nil {
			return nil, err
		}
		return spec.Build()
	}
	switch builtin {
	case "", "linear-network":
		return workloads.LinearTopology(workloads.NetworkBound)
	case "linear-compute":
		return workloads.LinearTopology(workloads.ComputeBound)
	case "diamond-network":
		return workloads.DiamondTopology(workloads.NetworkBound)
	case "diamond-compute":
		return workloads.DiamondTopology(workloads.ComputeBound)
	case "star-network":
		return workloads.StarTopology(workloads.NetworkBound)
	case "star-compute":
		return workloads.StarTopology(workloads.ComputeBound)
	case "pageload":
		return workloads.PageLoadTopology()
	case "processing":
		return workloads.ProcessingTopology()
	default:
		return nil, fmt.Errorf("unknown builtin %q", builtin)
	}
}

func loadCluster(path string) (*cluster.Cluster, error) {
	if path == "" {
		return cluster.Emulab12()
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return cluster.FromYAML(f)
}
