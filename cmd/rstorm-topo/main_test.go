package main

import (
	"testing"
)

func TestLoadBuiltinTopologies(t *testing.T) {
	builtins := []string{
		"", "linear-network", "linear-compute",
		"diamond-network", "diamond-compute",
		"star-network", "star-compute",
		"pageload", "processing",
	}
	for _, name := range builtins {
		topo, err := loadTopology("", name)
		if err != nil {
			t.Errorf("builtin %q: %v", name, err)
			continue
		}
		if topo.TotalTasks() == 0 {
			t.Errorf("builtin %q has no tasks", name)
		}
	}
	if _, err := loadTopology("", "mystery"); err == nil {
		t.Error("unknown builtin accepted")
	}
}

func TestTotalPairs(t *testing.T) {
	topo, err := loadTopology("", "linear-network")
	if err != nil {
		t.Fatal(err)
	}
	// 3 streams x 6 producers x 6 consumers.
	if got := totalPairs(topo); got != 108 {
		t.Errorf("totalPairs = %d, want 108", got)
	}
}

func TestRunCompare(t *testing.T) {
	if err := run([]string{"-builtin", "star-compute", "-compare"}); err != nil {
		t.Fatalf("run -compare: %v", err)
	}
}

func TestRunExport(t *testing.T) {
	if err := run([]string{"-builtin", "pageload", "-export"}); err != nil {
		t.Fatalf("run -export: %v", err)
	}
}

func TestRunRejectsUnknownBuiltin(t *testing.T) {
	if err := run([]string{"-builtin", "mystery"}); err == nil {
		t.Error("unknown builtin accepted")
	}
}
