// Command rstorm-bench regenerates the paper's evaluation figures: it runs
// each experiment (default Storm vs R-Storm on the simulated testbed) and
// prints the comparison alongside the paper's claim.
//
// Usage:
//
//	rstorm-bench -list
//	rstorm-bench -figure fig8a
//	rstorm-bench -all -duration 30s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rstorm/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rstorm-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rstorm-bench", flag.ContinueOnError)
	var (
		figure   = fs.String("figure", "", "experiment ID to run (see -list)")
		all      = fs.Bool("all", false, "run every experiment")
		list     = fs.Bool("list", false, "list experiments and exit")
		duration = fs.Duration("duration", 30*time.Second, "simulated duration per run")
		window   = fs.Duration("window", 10*time.Second, "metrics window (paper reports tuples/10s)")
		seed     = fs.Int64("seed", 1, "simulation RNG seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n           paper: %s\n", e.ID, e.Title, e.PaperClaim)
		}
		return nil
	}

	opts := experiments.Options{
		Duration:      *duration,
		MetricsWindow: *window,
		Seed:          *seed,
	}

	var toRun []experiments.Experiment
	switch {
	case *all:
		toRun = experiments.All()
	case *figure != "":
		e, ok := experiments.ByID(*figure)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", *figure)
		}
		toRun = []experiments.Experiment{e}
	default:
		return fmt.Errorf("nothing to do: pass -figure <id>, -all, or -list")
	}

	for _, e := range toRun {
		start := time.Now()
		report, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Println(report.Render())
		// Progress note, not report content: wall time goes to stderr so
		// stdout stays byte-identical run to run (and diffable against a
		// matrix run's cells, which never embed wall-clock durations).
		fmt.Fprintf(os.Stderr, "(%s wall time %.1fs)\n", e.ID, time.Since(start).Seconds())
	}
	return nil
}
