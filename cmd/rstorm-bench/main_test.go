package main

import (
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list: %v", err)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	err := run([]string{"-figure", "fig99"})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunRequiresAction(t *testing.T) {
	err := run(nil)
	if err == nil || !strings.Contains(err.Error(), "nothing to do") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunSingleFigureShort(t *testing.T) {
	// fig9b is the cheapest figure (compute-bound, low event rate).
	if err := run([]string{"-figure", "fig9b", "-duration", "4s", "-window", "2s"}); err != nil {
		t.Fatalf("fig9b: %v", err)
	}
}
