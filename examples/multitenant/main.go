// Multitenant: drive the full master-daemon workflow of the paper's §6.5 —
// a 24-node cluster, supervisors joining, two production topologies
// submitted to Nimbus, periodic scheduling rounds, a node failure, and the
// automatic reschedule — then simulate both topologies together.
package main

import (
	"fmt"
	"log"
	"time"

	"rstorm"
	"rstorm/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	c, err := rstorm.Emulab24()
	if err != nil {
		return err
	}
	n, err := rstorm.NewNimbus(c, rstorm.NewResourceAwareScheduler())
	if err != nil {
		return err
	}

	// Supervisors join; only then do their resources count (§5: machines
	// send their resource availability to Nimbus).
	supervisors := make(map[rstorm.NodeID]*rstorm.Supervisor, c.Size())
	for _, id := range c.NodeIDs() {
		sv, err := n.StartSupervisor(id)
		if err != nil {
			return err
		}
		supervisors[id] = sv
	}
	fmt.Printf("cluster up: %d supervisors registered\n", len(n.AliveSupervisors()))

	pageload, err := workloads.PageLoadTopology()
	if err != nil {
		return err
	}
	processing, err := workloads.ProcessingTopologyScaled(2)
	if err != nil {
		return err
	}
	if err := n.SubmitTopology(pageload); err != nil {
		return err
	}
	if err := n.SubmitTopology(processing); err != nil {
		return err
	}
	scheduled := n.Tick() // one periodic master cycle
	fmt.Printf("scheduling round placed: %v\n", scheduled)
	for _, name := range scheduled {
		a := n.Assignment(name)
		fmt.Printf("  %-12s %2d nodes, %2d workers\n", name, len(a.NodesUsed()), a.WorkersUsed())
	}

	// A machine dies: its supervisor session expires, the next master
	// cycle notices, tears down affected topologies, and reschedules
	// them on the survivors.
	victim := n.Assignment("processing").NodesUsed()[0]
	fmt.Printf("\nkilling supervisor on %s...\n", victim)
	if err := supervisors[victim].Fail(); err != nil {
		return err
	}
	rescheduled := n.Tick()
	fmt.Printf("rescheduled after failure: %v\n", rescheduled)
	for id, p := range n.Assignment("processing").Placements {
		if p.Node == victim {
			return fmt.Errorf("task %d still on dead node", id)
		}
	}
	fmt.Println("no tasks remain on the failed node")

	// Execute both topologies together on the surviving 23 nodes.
	sim, err := rstorm.NewSimulation(c, rstorm.SimConfig{
		Duration:      30 * time.Second,
		MetricsWindow: 10 * time.Second,
	})
	if err != nil {
		return err
	}
	for _, topo := range []*rstorm.Topology{pageload, processing} {
		if err := sim.AddTopology(topo, n.Assignment(topo.Name())); err != nil {
			return err
		}
	}
	result, err := sim.Run()
	if err != nil {
		return err
	}
	fmt.Printf("\nafter %v simulated:\n", result.Duration)
	for _, name := range []string{"pageload", "processing"} {
		tr := result.Topology(name)
		fmt.Printf("  %-12s %10.0f tuples/10s, latency %v\n",
			name, tr.MeanSinkThroughput, tr.MeanLatency)
	}

	fmt.Println("\nmaster event log:")
	for _, e := range n.Events() {
		fmt.Println("  -", e)
	}
	return nil
}
