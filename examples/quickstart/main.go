// Quickstart: build a topology with declared resource demands, schedule
// it with R-Storm on the paper's 12-node testbed, simulate a minute of
// execution, and print throughput.
package main

import (
	"fmt"
	"log"
	"time"

	"rstorm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A word-count-style topology: the spout emits sentences, a splitter
	// fans words out, and a keyed counter aggregates per word. Resource
	// demands follow the paper's user API (§5.2): CPU in points (100 =
	// one core), memory in MB.
	b := rstorm.NewTopologyBuilder("wordcount")
	b.SetSpout("sentences", 4).
		SetCPULoad(25).SetMemoryLoad(512).
		SetProfile(rstorm.ExecProfile{CPUPerTuple: 200 * time.Microsecond, TupleBytes: 512})
	b.SetBolt("split", 4).ShuffleGrouping("sentences").
		SetCPULoad(30).SetMemoryLoad(512).
		SetProfile(rstorm.ExecProfile{CPUPerTuple: 150 * time.Microsecond, TupleBytes: 128, OutRatio: 4})
	b.SetBolt("count", 4).FieldsGrouping("split", "word").
		SetCPULoad(40).SetMemoryLoad(768).
		SetProfile(rstorm.ExecProfile{CPUPerTuple: 80 * time.Microsecond, TupleBytes: 64, KeyCardinality: 50000})
	topo, err := b.Build()
	if err != nil {
		return fmt.Errorf("build topology: %w", err)
	}

	c, err := rstorm.Emulab12()
	if err != nil {
		return fmt.Errorf("build cluster: %w", err)
	}

	// Schedule with R-Storm and inspect the placement before running.
	sched := rstorm.NewResourceAwareScheduler()
	state := rstorm.NewGlobalState(c)
	assignment, err := sched.Schedule(topo, c, state)
	if err != nil {
		return fmt.Errorf("schedule: %w", err)
	}
	fmt.Printf("R-Storm placed %d tasks on %d of %d nodes (%d workers)\n",
		topo.TotalTasks(), len(assignment.NodesUsed()), c.Size(), assignment.WorkersUsed())
	for _, node := range assignment.NodesUsed() {
		used := assignment.UsedPerNode(topo)[node]
		fmt.Printf("  %-10s tasks %v  (cpu %.0f pts, mem %.0f MB)\n",
			node, assignment.TasksOnNode(node), used.CPU, used.MemoryMB)
	}

	// Execute one simulated minute.
	if err := state.Apply(topo, assignment); err != nil {
		return err
	}
	sim, err := rstorm.NewSimulation(c, rstorm.SimConfig{Duration: time.Minute})
	if err != nil {
		return err
	}
	if err := sim.AddTopology(topo, assignment); err != nil {
		return err
	}
	result, err := sim.Run()
	if err != nil {
		return fmt.Errorf("simulate: %w", err)
	}

	tr := result.Topology("wordcount")
	fmt.Printf("\nafter %v simulated:\n", result.Duration)
	fmt.Printf("  throughput  %.0f tuples/%v at the sinks\n", tr.MeanSinkThroughput, result.Window)
	fmt.Printf("  latency     %v mean spout-to-sink\n", tr.MeanLatency)
	fmt.Printf("  emitted     %d roots, delivered %d counted words\n",
		tr.TuplesEmitted, tr.TuplesDelivered)
	fmt.Printf("  cpu util    %.0f%% mean over the %d used nodes\n",
		result.MeanUtilizationUsed*100, result.NodesUsed)
	return nil
}
