// Yahoo: run the two production topologies of the paper's §6.4 — PageLoad
// and Processing — each alone on the 12-node testbed under both schedulers,
// reproducing the Fig. 12 comparisons.
package main

import (
	"fmt"
	"log"
	"time"

	"rstorm"
	"rstorm/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	c, err := rstorm.Emulab12()
	if err != nil {
		return err
	}
	cfg := rstorm.SimConfig{Duration: 30 * time.Second, MetricsWindow: 10 * time.Second}

	topologies := []struct {
		label string
		build func() (*rstorm.Topology, error)
		paper string
	}{
		{"PageLoad (Fig. 12a)", workloads.PageLoadTopology, "~+50%"},
		{"Processing (Fig. 12b)", workloads.ProcessingTopology, "~+47%"},
	}
	for _, tc := range topologies {
		var means [2]float64
		var nodes [2]int
		for i, sched := range []rstorm.Scheduler{
			rstorm.NewEvenScheduler(),
			rstorm.NewResourceAwareScheduler(),
		} {
			topo, err := tc.build()
			if err != nil {
				return err
			}
			result, err := rstorm.ScheduleAndSimulate(c, cfg, sched, topo)
			if err != nil {
				return fmt.Errorf("%s under %s: %w", tc.label, sched.Name(), err)
			}
			tr := result.Topology(topo.Name())
			means[i] = tr.MeanSinkThroughput
			nodes[i] = tr.NodesUsed
		}
		fmt.Printf("%s\n", tc.label)
		fmt.Printf("  default Storm   %10.0f tuples/10s on %2d nodes\n", means[0], nodes[0])
		fmt.Printf("  R-Storm         %10.0f tuples/10s on %2d nodes\n", means[1], nodes[1])
		fmt.Printf("  improvement     %+.1f%%   (paper: %s)\n\n",
			(means[1]-means[0])/means[0]*100, tc.paper)
	}
	return nil
}
