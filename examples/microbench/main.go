// Microbench: run the paper's network-bound Linear micro-benchmark
// (Fig. 8a) under default Storm and under R-Storm, side by side, and chart
// both throughput timelines — the shape of the paper's headline result.
package main

import (
	"fmt"
	"log"
	"time"

	"rstorm"
	"rstorm/internal/viz"
	"rstorm/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	c, err := rstorm.Emulab12()
	if err != nil {
		return err
	}
	cfg := rstorm.SimConfig{Duration: 30 * time.Second, MetricsWindow: 5 * time.Second}

	type outcome struct {
		name   string
		series []float64
		mean   float64
		nodes  int
		util   float64
	}
	var outcomes []outcome
	for _, sched := range []rstorm.Scheduler{
		rstorm.NewEvenScheduler(),
		rstorm.NewResourceAwareScheduler(),
	} {
		topo, err := workloads.LinearTopology(workloads.NetworkBound)
		if err != nil {
			return err
		}
		result, err := rstorm.ScheduleAndSimulate(c, cfg, sched, topo)
		if err != nil {
			return fmt.Errorf("%s: %w", sched.Name(), err)
		}
		tr := result.Topology(topo.Name())
		outcomes = append(outcomes, outcome{
			name:   sched.Name(),
			series: tr.SinkSeries,
			mean:   tr.MeanSinkThroughput,
			nodes:  tr.NodesUsed,
			util:   result.MeanUtilizationUsed,
		})
	}

	base, rstormRun := outcomes[0], outcomes[1]
	fmt.Println("network-bound Linear topology (paper Fig. 8a)")
	fmt.Printf("  %-14s %14s %8s %8s\n", "scheduler", "tuples/window", "nodes", "cpu%")
	for _, o := range outcomes {
		fmt.Printf("  %-14s %14.0f %8d %7.1f%%\n", o.name, o.mean, o.nodes, o.util*100)
	}
	fmt.Printf("  improvement: %+.1f%% (paper reports ~+50%%)\n\n",
		(rstormRun.mean-base.mean)/base.mean*100)

	fmt.Print(viz.LineChart("throughput per window", []viz.Series{
		{Name: base.name, Values: base.series},
		{Name: rstormRun.name, Values: rstormRun.series},
	}, 64, 12))
	return nil
}
