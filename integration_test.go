package rstorm_test

import (
	"testing"
	"time"

	"rstorm"
	"rstorm/internal/workloads"
)

// TestIntegrationMasterFailureRescheduleSimulate drives the whole stack
// through the public API: a 24-node cluster, supervisors joining through
// the state store, two production topologies scheduled by Nimbus, a
// supervisor failure with automatic rescheduling, and a joint simulation
// of the final placements.
func TestIntegrationMasterFailureRescheduleSimulate(t *testing.T) {
	c, err := rstorm.Emulab24()
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	n, err := rstorm.NewNimbus(c, rstorm.NewResourceAwareScheduler())
	if err != nil {
		t.Fatalf("nimbus: %v", err)
	}
	supervisors := make(map[rstorm.NodeID]*rstorm.Supervisor)
	for _, id := range c.NodeIDs() {
		sv, err := n.StartSupervisor(id)
		if err != nil {
			t.Fatalf("supervisor %s: %v", id, err)
		}
		supervisors[id] = sv
	}

	pageload, err := workloads.PageLoadTopology()
	if err != nil {
		t.Fatal(err)
	}
	processing, err := workloads.ProcessingTopologyScaled(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SubmitTopology(pageload); err != nil {
		t.Fatal(err)
	}
	if err := n.SubmitTopology(processing); err != nil {
		t.Fatal(err)
	}
	if scheduled := n.Tick(); len(scheduled) != 2 {
		t.Fatalf("scheduled %v, want both", scheduled)
	}

	// R-Storm segregates the topologies: they share no nodes.
	plNodes := map[rstorm.NodeID]bool{}
	for _, node := range n.Assignment("pageload").NodesUsed() {
		plNodes[node] = true
	}
	for _, node := range n.Assignment("processing").NodesUsed() {
		if plNodes[node] {
			t.Errorf("topologies share node %s", node)
		}
	}

	// Kill a node hosting processing tasks; the next master cycle must
	// reschedule processing off it while pageload keeps its placement.
	victim := n.Assignment("processing").NodesUsed()[0]
	plBefore := n.Assignment("pageload")
	if err := supervisors[victim].Fail(); err != nil {
		t.Fatalf("fail: %v", err)
	}
	rescheduled := n.Tick()
	if len(rescheduled) != 1 || rescheduled[0] != "processing" {
		t.Fatalf("rescheduled %v, want [processing]", rescheduled)
	}
	if n.Assignment("pageload") != plBefore {
		t.Error("pageload was disturbed by an unrelated failure")
	}
	for id, p := range n.Assignment("processing").Placements {
		if p.Node == victim {
			t.Errorf("task %d still on failed node", id)
		}
	}

	// The surviving placements execute cleanly together.
	sim, err := rstorm.NewSimulation(c, rstorm.SimConfig{
		Duration:      8 * time.Second,
		MetricsWindow: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, topo := range []*rstorm.Topology{pageload, processing} {
		if err := sim.AddTopology(topo, n.Assignment(topo.Name())); err != nil {
			t.Fatalf("add %s: %v", topo.Name(), err)
		}
	}
	result, err := sim.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, name := range []string{"pageload", "processing"} {
		tr := result.Topology(name)
		if tr.TuplesDelivered == 0 {
			t.Errorf("%s delivered nothing", name)
		}
		if tr.MeanSinkThroughput <= 0 {
			t.Errorf("%s throughput %v", name, tr.MeanSinkThroughput)
		}
	}
}

// TestIntegrationSchedulerComparisonProperty checks, across every built-in
// workload, the paper's core claims at the schedule level: R-Storm never
// violates hard memory constraints and never uses more nodes than default
// Storm.
func TestIntegrationSchedulerComparisonProperty(t *testing.T) {
	c, err := rstorm.Emulab12()
	if err != nil {
		t.Fatal(err)
	}
	builds := map[string]func() (*rstorm.Topology, error){
		"linear-net":      func() (*rstorm.Topology, error) { return workloads.LinearTopology(workloads.NetworkBound) },
		"linear-compute":  func() (*rstorm.Topology, error) { return workloads.LinearTopology(workloads.ComputeBound) },
		"diamond-net":     func() (*rstorm.Topology, error) { return workloads.DiamondTopology(workloads.NetworkBound) },
		"diamond-compute": func() (*rstorm.Topology, error) { return workloads.DiamondTopology(workloads.ComputeBound) },
		"star-net":        func() (*rstorm.Topology, error) { return workloads.StarTopology(workloads.NetworkBound) },
		"star-compute":    func() (*rstorm.Topology, error) { return workloads.StarTopology(workloads.ComputeBound) },
		"pageload":        workloads.PageLoadTopology,
		"processing":      workloads.ProcessingTopology,
	}
	for name, build := range builds {
		t.Run(name, func(t *testing.T) {
			topo, err := build()
			if err != nil {
				t.Fatal(err)
			}
			ra, err := rstorm.NewResourceAwareScheduler().Schedule(topo, c, rstorm.NewGlobalState(c))
			if err != nil {
				t.Fatalf("r-storm: %v", err)
			}
			ea, err := rstorm.NewEvenScheduler().Schedule(topo, c, rstorm.NewGlobalState(c))
			if err != nil {
				t.Fatalf("even: %v", err)
			}
			for node, used := range ra.UsedPerNode(topo) {
				if capa := c.Node(node).Spec.Capacity; used.MemoryMB > capa.MemoryMB {
					t.Errorf("r-storm memory violation on %s: %v", node, used)
				}
			}
			// Star-compute is the deliberate exception: its worker
			// hint makes default pack densely (and overload CPU),
			// so default uses fewer nodes there — the Fig. 9c story.
			if name != "star-compute" {
				if len(ra.NodesUsed()) > len(ea.NodesUsed()) {
					t.Errorf("r-storm uses %d nodes, default %d",
						len(ra.NodesUsed()), len(ea.NodesUsed()))
				}
				if ra.NetworkCost(topo, c) > ea.NetworkCost(topo, c) {
					t.Errorf("r-storm network cost %v exceeds default %v",
						ra.NetworkCost(topo, c), ea.NetworkCost(topo, c))
				}
			}
		})
	}
}
