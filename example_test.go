package rstorm_test

import (
	"fmt"
	"time"

	"rstorm"
)

// ExampleScheduleAndSimulate builds a small topology, schedules it with
// R-Storm on the paper's testbed, and runs it for ten simulated seconds.
func ExampleScheduleAndSimulate() {
	b := rstorm.NewTopologyBuilder("example")
	b.SetSpout("numbers", 2).SetCPULoad(20).SetMemoryLoad(256).
		SetProfile(rstorm.ExecProfile{CPUPerTuple: time.Millisecond, TupleBytes: 128})
	b.SetBolt("doubler", 2).ShuffleGrouping("numbers").
		SetCPULoad(20).SetMemoryLoad(256).
		SetProfile(rstorm.ExecProfile{CPUPerTuple: time.Millisecond, TupleBytes: 128})
	topo, err := b.Build()
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	c, err := rstorm.Emulab12()
	if err != nil {
		fmt.Println("cluster:", err)
		return
	}
	result, err := rstorm.ScheduleAndSimulate(c,
		rstorm.SimConfig{Duration: 10 * time.Second, MetricsWindow: 10 * time.Second},
		rstorm.NewResourceAwareScheduler(), topo)
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	tr := result.Topology("example")
	fmt.Printf("nodes used: %d\n", tr.NodesUsed)
	fmt.Printf("delivered > 0: %v\n", tr.TuplesDelivered > 0)
	// Output:
	// nodes used: 1
	// delivered > 0: true
}

// ExampleNewResourceAwareScheduler shows the schedule R-Storm produces for
// a compute-bound chain: two 50-point tasks per node, no overcommit.
func ExampleNewResourceAwareScheduler() {
	b := rstorm.NewTopologyBuilder("chain")
	b.SetSpout("src", 2).SetCPULoad(50).SetMemoryLoad(1024)
	b.SetBolt("dst", 2).ShuffleGrouping("src").SetCPULoad(50).SetMemoryLoad(1024)
	topo, err := b.Build()
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	c, err := rstorm.Emulab12()
	if err != nil {
		fmt.Println("cluster:", err)
		return
	}
	a, err := rstorm.NewResourceAwareScheduler().Schedule(topo, c, rstorm.NewGlobalState(c))
	if err != nil {
		fmt.Println("schedule:", err)
		return
	}
	fmt.Printf("nodes used: %d\n", len(a.NodesUsed()))
	for _, node := range a.NodesUsed() {
		used := a.UsedPerNode(topo)[node]
		fmt.Printf("%s: cpu %.0f, mem %.0f\n", node, used.CPU, used.MemoryMB)
	}
	// Output:
	// nodes used: 2
	// node-0-0: cpu 100, mem 2048
	// node-0-1: cpu 100, mem 2048
}
