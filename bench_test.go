package rstorm_test

import (
	"fmt"
	"testing"
	"time"

	"rstorm"
	"rstorm/internal/cluster"
	"rstorm/internal/experiments"
	"rstorm/internal/workloads"
)

// benchOpts keeps figure benchmarks affordable: three 4-second windows per
// run (one warm-up) instead of the paper's 15 minutes. Figures driven from
// cmd/rstorm-bench use longer durations; EXPERIMENTS.md records a full run.
func benchOpts() experiments.Options {
	return experiments.Options{
		Duration:      12 * time.Second,
		MetricsWindow: 4 * time.Second,
		Seed:          1,
	}
}

// benchFigure runs one figure experiment per iteration and reports the
// headline comparison as custom metrics.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	b.ReportAllocs()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var last *experiments.Report
	for i := 0; i < b.N; i++ {
		report, err := e.Run(benchOpts())
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		last = report
	}
	if last == nil {
		b.Fatalf("%s: no report produced; headline metrics would be silently dropped", id)
	}
	if len(last.Rows) == 0 {
		b.Fatalf("%s: report has no rows; headline metrics would be silently dropped", id)
	}
	row := last.Rows[0]
	b.ReportMetric(row.Baseline, "default")
	b.ReportMetric(row.RStorm, "rstorm")
	b.ReportMetric(row.ImprovementPct, "improve_%")
}

// Figure 8: network-bound micro-benchmarks (paper: +50% / +30% / +47%).

func BenchmarkFig8aLinearNetworkBound(b *testing.B)  { benchFigure(b, "fig8a") }
func BenchmarkFig8bDiamondNetworkBound(b *testing.B) { benchFigure(b, "fig8b") }
func BenchmarkFig8cStarNetworkBound(b *testing.B)    { benchFigure(b, "fig8c") }

// Figure 9: compute-bound micro-benchmarks (paper: equal throughput on
// half the machines; star bottlenecked under default).

func BenchmarkFig9aLinearComputeBound(b *testing.B)  { benchFigure(b, "fig9a") }
func BenchmarkFig9bDiamondComputeBound(b *testing.B) { benchFigure(b, "fig9b") }
func BenchmarkFig9cStarComputeBound(b *testing.B)    { benchFigure(b, "fig9c") }

// Figure 10: CPU utilization comparison (paper: +69% / +91% / +350%).

func BenchmarkFig10CPUUtilization(b *testing.B) { benchFigure(b, "fig10") }

// Figure 12: Yahoo! production topologies (paper: +50% / +47%).

func BenchmarkFig12aPageLoad(b *testing.B)   { benchFigure(b, "fig12a") }
func BenchmarkFig12bProcessing(b *testing.B) { benchFigure(b, "fig12b") }

// Figure 13: multi-topology scheduling on 24 nodes (paper: PageLoad +53%,
// Processing collapses under default Storm).

func BenchmarkFig13MultiTopology(b *testing.B) { benchFigure(b, "fig13") }

// Ablations from DESIGN.md.

func BenchmarkAblationTaskOrdering(b *testing.B)  { benchFigure(b, "ablationA") }
func BenchmarkAblationGreedyVsExact(b *testing.B) { benchFigure(b, "ablationB") }
func BenchmarkAblationWeights(b *testing.B)       { benchFigure(b, "ablationC") }

// Runtime memory model (DESIGN.md §4): the memstress scenario fixes its
// own duration/window, so benchOpts only contributes the seed.

func BenchmarkMemStressRuntimeMemory(b *testing.B) { benchFigure(b, "memstress") }

// Scheduler latency: §3 demands that "scheduling decisions need to be made
// in a snappy manner". These benchmarks measure schedule-computation time
// as the task count grows.

func schedulerLatencyTopo(b *testing.B, components, par int) *rstorm.Topology {
	b.Helper()
	tb := rstorm.NewTopologyBuilder("lat")
	tb.SetSpout("c0", par).SetCPULoad(5).SetMemoryLoad(16)
	for i := 1; i < components; i++ {
		tb.SetBolt(fmt.Sprintf("c%d", i), par).
			ShuffleGrouping(fmt.Sprintf("c%d", i-1)).
			SetCPULoad(5).SetMemoryLoad(16)
	}
	topo, err := tb.Build()
	if err != nil {
		b.Fatalf("build: %v", err)
	}
	return topo
}

func benchSchedulerLatency(b *testing.B, sched rstorm.Scheduler, components, par, racks, nodesPerRack int) {
	b.Helper()
	b.ReportAllocs()
	topo := schedulerLatencyTopo(b, components, par)
	c, err := rstorm.TwoRack(racks, nodesPerRack, rstorm.EmulabNodeSpec())
	if err != nil {
		b.Fatalf("cluster: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		state := rstorm.NewGlobalState(c)
		if _, err := sched.Schedule(topo, c, state); err != nil {
			b.Fatalf("schedule: %v", err)
		}
	}
	b.ReportMetric(float64(topo.TotalTasks()), "tasks")
}

func BenchmarkSchedulerLatencyRStorm40Tasks(b *testing.B) {
	benchSchedulerLatency(b, rstorm.NewResourceAwareScheduler(), 4, 10, 2, 6)
}

func BenchmarkSchedulerLatencyRStorm400Tasks(b *testing.B) {
	benchSchedulerLatency(b, rstorm.NewResourceAwareScheduler(), 8, 50, 4, 16)
}

func BenchmarkSchedulerLatencyRStorm4000Tasks(b *testing.B) {
	benchSchedulerLatency(b, rstorm.NewResourceAwareScheduler(), 8, 500, 8, 32)
}

func BenchmarkSchedulerLatencyEven400Tasks(b *testing.B) {
	benchSchedulerLatency(b, rstorm.NewEvenScheduler(), 8, 50, 4, 16)
}

func BenchmarkSchedulerLatencyOffline400Tasks(b *testing.B) {
	benchSchedulerLatency(b, rstorm.NewOfflineLinearScheduler(), 8, 50, 4, 16)
}

// Simulator engine throughput: tuples processed per wall-clock second on
// the Fig. 8a workload, a sanity check that the DES can sustain the
// evaluation's event rates.

func benchSimulatorThroughput(b *testing.B, memoryModel bool) {
	benchSimulatorThroughputFull(b, memoryModel, false, false)
}

func benchSimulatorThroughputObserved(b *testing.B, memoryModel, observed bool) {
	benchSimulatorThroughputFull(b, memoryModel, observed, false)
}

// benchEngineTopology builds the three-stage pipeline every simulator
// throughput benchmark shares — spout → mid → sink, shuffle-grouped, at
// the given per-component parallelism. With the memory model on, the
// bolts also carry a growing working set, exercising the resident-memory
// accounting. The footprints stay well under capacity (8 tasks x 160 MB
// on a 2048 MB node): those benchmarks measure the accounting, not the
// kills — a single OOM would change the workload and make the comparison
// meaningless.
func benchEngineTopology(b *testing.B, name string, par int, memoryModel bool) *rstorm.Topology {
	b.Helper()
	profile := func(memMB float64) rstorm.ExecProfile {
		p := rstorm.ExecProfile{CPUPerTuple: 100 * time.Microsecond, TupleBytes: 256}
		if memoryModel {
			p.MemMB = memMB
			p.MemGrowTuples = 10000
		}
		return p
	}
	tb := rstorm.NewTopologyBuilder(name)
	tb.SetSpout("s", par).SetCPULoad(10).SetMemoryLoad(256).
		SetProfile(profile(0))
	tb.SetBolt("m", par).ShuffleGrouping("s").SetCPULoad(10).SetMemoryLoad(256).
		SetProfile(profile(160))
	tb.SetBolt("z", par).ShuffleGrouping("m").SetCPULoad(10).SetMemoryLoad(256).
		SetProfile(profile(160))
	topo, err := tb.Build()
	if err != nil {
		b.Fatal(err)
	}
	return topo
}

func benchSimulatorThroughputFull(b *testing.B, memoryModel, observed, histograms bool) {
	b.Helper()
	b.ReportAllocs()
	c, err := cluster.Emulab12()
	if err != nil {
		b.Fatal(err)
	}
	topo := benchEngineTopology(b, "enginebench", 4, memoryModel)
	sched := rstorm.NewResourceAwareScheduler()
	var processed int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := rstorm.SimConfig{Duration: 5 * time.Second, MetricsWindow: time.Second,
			MemoryModel: memoryModel, LatencyHistograms: histograms}
		var result *rstorm.SimResult
		var err error
		if observed {
			// Attach the demand profiler so every window flush also
			// materializes the per-edge traffic counters — the tap whose
			// hot path must stay a single int add per delivery.
			state := rstorm.NewGlobalState(c)
			a, serr := sched.Schedule(topo, c, state)
			if serr != nil {
				b.Fatal(serr)
			}
			sim, serr := rstorm.NewSimulation(c, cfg)
			if serr != nil {
				b.Fatal(serr)
			}
			if serr := sim.AddTopology(topo, a); serr != nil {
				b.Fatal(serr)
			}
			if serr := sim.SetObserver(rstorm.NewDemandProfiler()); serr != nil {
				b.Fatal(serr)
			}
			result, err = sim.Run()
		} else {
			result, err = rstorm.ScheduleAndSimulate(c, cfg, sched, topo)
		}
		if err != nil {
			b.Fatal(err)
		}
		processed += result.Topology("enginebench").TuplesProcessed
	}
	b.StopTimer()
	if elapsed := b.Elapsed().Seconds(); elapsed > 0 {
		b.ReportMetric(float64(processed)/elapsed, "tuples/s")
	}
}

func BenchmarkSimulatorThroughput(b *testing.B) { benchSimulatorThroughput(b, false) }

// BenchmarkSimulatorThroughputMemoryModel proves the runtime memory
// model's hot-path accounting (queue-byte adds, handled-tuple counter,
// per-window residency checks) stays allocation-free: allocs/op must match
// the memory-blind benchmark above, and tuples/s must stay within noise.
func BenchmarkSimulatorThroughputMemoryModel(b *testing.B) { benchSimulatorThroughput(b, true) }

// BenchmarkSimulatorThroughputTraffic proves the traffic tap stays off the
// allocation path: per-wire counting is one int add per delivery, and the
// profiler observer's per-window edge materialization reuses its buffers,
// so allocs/op stays O(windows + setup) — independent of tuple volume —
// and tuples/s within noise of the unobserved run.
func BenchmarkSimulatorThroughputTraffic(b *testing.B) {
	benchSimulatorThroughputObserved(b, false, true)
}

// BenchmarkSimulatorThroughputObservability measures the same engine run
// with per-topology latency histograms enabled: every delivered tuple also
// records into a log-bucketed histogram. The acceptance bar is <5%
// throughput regression versus BenchmarkSimulatorThroughput and identical
// allocs/op — histogram buckets are preallocated, so the tuple path must
// stay allocation-free.
func BenchmarkSimulatorThroughputObservability(b *testing.B) {
	benchSimulatorThroughputFull(b, false, false, true)
}

// BenchmarkSimulatorThroughputSharded is the many-core speedup benchmark
// (DESIGN.md §11): a 400-node, 8-rack cluster running a 96-task pipeline
// spread evenly across racks, under the legacy kernel (shards=0) and the
// sharded conservative-parallel kernel at 1 and 4 workers. tuples/s is
// the comparison metric; on multi-core hardware shards=4 should exceed
// shards=0 by ≥2×, while shards=1 measures the sharded kernel's window
// and handoff overhead without any parallelism. Results for shards>=1
// are byte-identical at every worker count, so the variants differ only
// in wall-clock.
func BenchmarkSimulatorThroughputSharded(b *testing.B) {
	c, err := cluster.TwoRack(8, 50, cluster.EmulabNodeSpec())
	if err != nil {
		b.Fatal(err)
	}
	topo := benchEngineTopology(b, "shardbench", 32, false)
	// Even spreading (not resource-aware packing) keeps every rack's lane
	// busy — the placement a speedup measurement needs, not the one a
	// network-cost minimizer would pick.
	sched := rstorm.NewEvenScheduler()
	for _, shards := range []int{0, 1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			var processed int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg := rstorm.SimConfig{Duration: 2 * time.Second,
					MetricsWindow: time.Second, Shards: shards}
				result, err := rstorm.ScheduleAndSimulate(c, cfg, sched, topo)
				if err != nil {
					b.Fatal(err)
				}
				processed += result.Topology("shardbench").TuplesProcessed
			}
			b.StopTimer()
			if elapsed := b.Elapsed().Seconds(); elapsed > 0 {
				b.ReportMetric(float64(processed)/elapsed, "tuples/s")
			}
		})
	}
}

// Multi-tenant control plane: cost of one Nimbus scheduling round on a
// loaded 24-node cluster. The FIFO variant admits nine equal-priority
// tenants (the pre-multi-tenancy behaviour, byte-identical with
// priorities unset); the MultiTenant variant times the round where a
// high-priority arrival on the full cluster takes the eviction path —
// priority ordering, greedy victim trial, teardown and re-queue.

func benchTenants(b *testing.B, n int) []*rstorm.Topology {
	b.Helper()
	out := make([]*rstorm.Topology, 0, n)
	for i := 0; i < n; i++ {
		topo, err := workloads.BatchTenant(fmt.Sprintf("batch-%02d", i))
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, topo)
	}
	return out
}

func BenchmarkSchedulingRoundFIFO(b *testing.B) {
	b.ReportAllocs()
	c, err := rstorm.Emulab24()
	if err != nil {
		b.Fatal(err)
	}
	batches := benchTenants(b, 9)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		n, err := rstorm.NewNimbus(c, rstorm.NewResourceAwareScheduler())
		if err != nil {
			b.Fatal(err)
		}
		for _, id := range c.NodeIDs() {
			if _, err := n.StartSupervisor(id); err != nil {
				b.Fatal(err)
			}
		}
		for _, topo := range batches {
			if err := n.SubmitTopology(topo); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if got := n.RunSchedulingRound(); len(got) != len(batches) {
			b.Fatalf("round scheduled %d of %d", len(got), len(batches))
		}
	}
}

func BenchmarkSchedulingRoundMultiTenant(b *testing.B) {
	b.ReportAllocs()
	c, err := rstorm.Emulab24()
	if err != nil {
		b.Fatal(err)
	}
	batches := benchTenants(b, 9)
	prod, err := workloads.ProdTenant(9)
	if err != nil {
		b.Fatal(err)
	}
	evictions := 0
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		n, err := rstorm.NewNimbus(c, rstorm.NewResourceAwareScheduler())
		if err != nil {
			b.Fatal(err)
		}
		for _, id := range c.NodeIDs() {
			if _, err := n.StartSupervisor(id); err != nil {
				b.Fatal(err)
			}
		}
		for _, topo := range batches {
			if err := n.SubmitTopology(topo); err != nil {
				b.Fatal(err)
			}
		}
		if got := n.RunSchedulingRound(); len(got) != len(batches) {
			b.Fatalf("fill round scheduled %d of %d", len(got), len(batches))
		}
		if err := n.SubmitTopology(prod); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		got := n.RunSchedulingRound()
		b.StopTimer()
		if len(got) != 1 || got[0] != "prod" {
			b.Fatalf("eviction round scheduled %v, want [prod]", got)
		}
		if evs := n.Evictions(); len(evs) == 0 {
			b.Fatal("eviction path not exercised")
		} else {
			evictions += len(evs)
		}
		b.StartTimer()
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(evictions)/float64(b.N), "evictions/round")
	}
}

// Assignment analysis cost on a large placement.

func BenchmarkAssignmentNetworkCost(b *testing.B) {
	b.ReportAllocs()
	topo := schedulerLatencyTopo(b, 8, 50)
	c, err := rstorm.TwoRack(4, 16, rstorm.EmulabNodeSpec())
	if err != nil {
		b.Fatal(err)
	}
	a, err := rstorm.NewResourceAwareScheduler().Schedule(topo, c, rstorm.NewGlobalState(c))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.NetworkCost(topo, c)
	}
}
