// Package rstorm is a from-scratch Go reproduction of R-Storm, the
// resource-aware scheduler for Apache Storm (Peng et al., Middleware 2015).
//
// The package is a facade over the implementation packages:
//
//   - Topologies are built with a TopologyBuilder, declaring spouts, bolts,
//     stream groupings, and per-task resource demands (SetCPULoad /
//     SetMemoryLoad — the paper's §5.2 user API).
//   - Clusters describe racks of worker nodes with CPU/memory/bandwidth
//     capacities and a four-level network hierarchy (intra-process,
//     inter-process, inter-node, inter-rack).
//   - Schedulers map tasks to nodes: NewResourceAwareScheduler implements
//     the paper's Algorithms 1–4; NewEvenScheduler reproduces default
//     Storm's round-robin; NewOfflineLinearScheduler is the Aniello-style
//     baseline; NewExactScheduler solves small instances optimally.
//   - Simulate executes scheduled topologies on a discrete-event model of
//     the paper's testbed and reports throughput timelines, utilization
//     and latency.
//   - NewNimbus provides the master-daemon view: supervisor membership,
//     topology submission, periodic scheduling rounds, and reassignment
//     on node failure.
//   - NewAdaptiveLoop closes the scheduling loop (beyond the paper):
//     measured per-component demands replace the declarations and
//     placement-induced hotspots trigger incremental, migration-aware
//     rebalances mid-run.
//
// Quick start:
//
//	b := rstorm.NewTopologyBuilder("wordcount")
//	b.SetSpout("words", 4).SetCPULoad(25).SetMemoryLoad(512)
//	b.SetBolt("count", 4).FieldsGrouping("words", "word").
//		SetCPULoad(50).SetMemoryLoad(512)
//	topo, err := b.Build()
//	// handle err
//	c, err := rstorm.Emulab12()
//	// handle err
//	result, err := rstorm.ScheduleAndSimulate(c, rstorm.SimConfig{},
//		rstorm.NewResourceAwareScheduler(), topo)
//	// handle err
//	fmt.Println(result)
package rstorm

import (
	"rstorm/internal/adaptive"
	"rstorm/internal/cluster"
	"rstorm/internal/core"
	"rstorm/internal/nimbus"
	"rstorm/internal/resource"
	"rstorm/internal/simulator"
	"rstorm/internal/topology"
)

// Topology model (see internal/topology).
type (
	// Topology is an immutable, validated computation graph.
	Topology = topology.Topology
	// TopologyBuilder assembles a Topology.
	TopologyBuilder = topology.Builder
	// SpoutDeclarer configures a declared spout.
	SpoutDeclarer = topology.SpoutDeclarer
	// BoltDeclarer configures a declared bolt.
	BoltDeclarer = topology.BoltDeclarer
	// Component is a spout or bolt with parallelism and resource loads.
	Component = topology.Component
	// ExecProfile is a task's simulated runtime behaviour.
	ExecProfile = topology.ExecProfile
	// Task is one parallel instance of a component.
	Task = topology.Task
	// Stream is a directed edge between components.
	Stream = topology.Stream
	// GroupingKind selects stream partitioning.
	GroupingKind = topology.GroupingKind
	// TopologySpec is the JSON file form of a topology.
	TopologySpec = topology.Spec
)

// Stream groupings.
const (
	GroupingShuffle        = topology.GroupingShuffle
	GroupingFields         = topology.GroupingFields
	GroupingGlobal         = topology.GroupingGlobal
	GroupingAll            = topology.GroupingAll
	GroupingLocalOrShuffle = topology.GroupingLocalOrShuffle
)

// Cluster model (see internal/cluster).
type (
	// Cluster describes racks of worker nodes and the network model.
	Cluster = cluster.Cluster
	// ClusterBuilder assembles a Cluster.
	ClusterBuilder = cluster.Builder
	// Node is one worker machine.
	Node = cluster.Node
	// NodeSpec declares a node's capacities.
	NodeSpec = cluster.NodeSpec
	// NodeID identifies a node.
	NodeID = cluster.NodeID
	// RackID identifies a rack.
	RackID = cluster.RackID
	// NetworkModel holds latencies, distances and uplink bandwidth.
	NetworkModel = cluster.NetworkModel
)

// Resource model (see internal/resource).
type (
	// ResourceVector is a point in the CPU/memory/bandwidth space.
	ResourceVector = resource.Vector
	// Weights scale the axes of the scheduler's distance function.
	Weights = resource.Weights
)

// Scheduling (see internal/core).
type (
	// Scheduler maps a topology's tasks onto nodes.
	Scheduler = core.Scheduler
	// Assignment is a task → placement mapping.
	Assignment = core.Assignment
	// Placement is a node and worker slot.
	Placement = core.Placement
	// GlobalState tracks cluster-wide reservations across topologies.
	GlobalState = core.GlobalState
	// RASOption configures the resource-aware scheduler.
	RASOption = core.RASOption
)

// Simulation (see internal/simulator).
type (
	// SimConfig tunes a simulation run.
	SimConfig = simulator.Config
	// SimResult is a finished simulation's output.
	SimResult = simulator.Result
	// TopologyResult is one topology's measurements.
	TopologyResult = simulator.TopologyResult
	// Simulation executes scheduled topologies on virtual time.
	Simulation = simulator.Simulation
)

// Master daemon (see internal/nimbus).
type (
	// Nimbus is the master daemon.
	Nimbus = nimbus.Nimbus
	// Supervisor is a worker node's daemon.
	Supervisor = nimbus.Supervisor
)

// Adaptive feedback scheduling (see internal/adaptive): a runtime metrics
// tap feeds a demand profiler whose measured per-component vectors replace
// the user's declarations, and a feedback controller triggers incremental
// rebalances when placement-induced contention appears.
type (
	// TaskSample is one task's per-window runtime measurements.
	TaskSample = simulator.TaskSample
	// SimObserver receives every task's sample at each window boundary.
	SimObserver = simulator.Observer
	// DemandProfiler folds task samples into per-component estimates.
	DemandProfiler = adaptive.Profiler
	// AdaptiveController detects hotspots and plans incremental rebalances.
	AdaptiveController = adaptive.Controller
	// AdaptiveLoop drives a simulation in pause/reassign/resume epochs.
	AdaptiveLoop = adaptive.Loop
	// AdaptiveLoopConfig tunes the control loop.
	AdaptiveLoopConfig = adaptive.LoopConfig
	// AdaptiveLoopResult bundles a finished adaptive run.
	AdaptiveLoopResult = adaptive.LoopResult
	// TaskMove records one task migration of an incremental reschedule.
	TaskMove = core.Move
	// IncrementalOptions tunes the migration-aware reschedule pass.
	IncrementalOptions = core.IncrementalOptions
)

// NewDemandProfiler returns a profiler with default smoothing; attach it
// with Simulation.SetObserver to measure without rebalancing.
func NewDemandProfiler() *DemandProfiler {
	return adaptive.NewProfiler(adaptive.ProfilerConfig{})
}

// NewAdaptiveLoop wires the adaptive control loop over a prepared (not yet
// started) simulation. Register each simulated topology with Manage, then
// call Run instead of Simulation.Run.
func NewAdaptiveLoop(sim *Simulation, c *Cluster, cfg AdaptiveLoopConfig) *AdaptiveLoop {
	return adaptive.NewLoop(sim, c, core.NewResourceAwareScheduler(), cfg)
}

// Sentinel errors, matchable with errors.Is.
var (
	// ErrInsufficientResources reports an unsatisfiable hard constraint.
	ErrInsufficientResources = core.ErrInsufficientResources
	// ErrNoSlots reports exhausted worker slots.
	ErrNoSlots = core.ErrNoSlots
)

// NewTopologyBuilder returns a builder for a topology with the given name.
func NewTopologyBuilder(name string) *TopologyBuilder {
	return topology.NewBuilder(name)
}

// NewClusterBuilder returns a builder using the default network model.
func NewClusterBuilder() *ClusterBuilder {
	return cluster.NewBuilder()
}

// EmulabNodeSpec mirrors one worker of the paper's testbed: 100 CPU
// points, 2048 MB, 100 Mbps NIC, 4 worker slots.
func EmulabNodeSpec() NodeSpec { return cluster.EmulabNodeSpec() }

// Emulab12 builds the paper's main evaluation cluster: two racks of six
// nodes (§6.1).
func Emulab12() (*Cluster, error) { return cluster.Emulab12() }

// Emulab24 builds the multi-topology cluster: two racks of twelve (§6.5).
func Emulab24() (*Cluster, error) { return cluster.Emulab24() }

// TwoRack builds racks x nodesPerRack identical nodes.
func TwoRack(racks, nodesPerRack int, spec NodeSpec) (*Cluster, error) {
	return cluster.TwoRack(racks, nodesPerRack, spec)
}

// NewResourceAwareScheduler returns R-Storm's scheduler (paper §4) with
// memory hard, CPU and bandwidth soft, and normalized distance weights.
func NewResourceAwareScheduler(opts ...RASOption) Scheduler {
	return core.NewResourceAwareScheduler(opts...)
}

// WithWeights overrides the scheduler's soft-constraint weights.
func WithWeights(w Weights) RASOption { return core.WithWeights(w) }

// NewEvenScheduler returns default Storm's round-robin scheduler.
func NewEvenScheduler() Scheduler { return core.EvenScheduler{} }

// NewOfflineLinearScheduler returns the Aniello-style linearization
// baseline (§7).
func NewOfflineLinearScheduler() Scheduler { return core.OfflineLinearScheduler{} }

// NewExactScheduler returns the branch-and-bound solver for small
// instances.
func NewExactScheduler() Scheduler { return core.NewExactScheduler() }

// NewGlobalState returns a fresh reservation tracker for the cluster.
func NewGlobalState(c *Cluster) *GlobalState { return core.NewGlobalState(c) }

// NewSimulation returns a simulation over the cluster; add scheduled
// topologies with AddTopology, then Run.
func NewSimulation(c *Cluster, cfg SimConfig) (*Simulation, error) {
	return simulator.New(c, cfg)
}

// ScheduleAndSimulate schedules every topology in order with the given
// scheduler (sharing one GlobalState, as Nimbus would) and executes them
// together on the simulator.
func ScheduleAndSimulate(
	c *Cluster,
	cfg SimConfig,
	sched Scheduler,
	topos ...*Topology,
) (*SimResult, error) {
	state := core.NewGlobalState(c)
	sim, err := simulator.New(c, cfg)
	if err != nil {
		return nil, err
	}
	for _, topo := range topos {
		a, err := sched.Schedule(topo, c, state)
		if err != nil {
			return nil, err
		}
		if err := state.Apply(topo, a); err != nil {
			return nil, err
		}
		if err := sim.AddTopology(topo, a); err != nil {
			return nil, err
		}
	}
	return sim.Run()
}

// NewNimbus returns a master daemon over the cluster using the scheduler.
func NewNimbus(c *Cluster, sched Scheduler) (*Nimbus, error) {
	return nimbus.New(c, sched)
}
